package experiments

import (
	"strings"
	"testing"
)

// TestE12AbstractFleet runs a short abstract-tier campaign and pins the
// headline shape: a populated per-cycle table, a working-band delivery
// ratio, hero cross-checks recorded every cycle, and divergence inside
// the documented budget.
func TestE12AbstractFleet(t *testing.T) {
	res, err := Run("E12", Options{Trials: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || res.Table.Rows() != 4 {
		t.Fatalf("table rows = %d, want 4", res.Table.Rows())
	}
	ratio := res.Metrics["delivery_ratio"]
	if ratio < 0.3 || ratio > 1 {
		t.Fatalf("delivery_ratio = %.3f, outside the plausible fleet band", ratio)
	}
	if got := res.Metrics["hero_checks"]; got != 8 {
		t.Fatalf("hero_checks = %g, want 2 per cycle × 4 cycles", got)
	}
	if frac := res.Metrics["hero_divergence_frac"]; frac > 0.2 {
		t.Fatalf("hero_divergence_frac = %.2f, outside the 0.2 budget", frac)
	}
	if len(res.Notes) < 2 {
		t.Fatalf("notes missing: %v", res.Notes)
	}
}

// TestE12Deterministic: the worker count must not leak into the artifact —
// the property the CI abstract-tier cmp leg checks end-to-end via vabsim.
func TestE12Deterministic(t *testing.T) {
	a, err := Run("E12", Options{Trials: 3, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E12", Options{Trials: 3, Seed: 7, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.CSV() != b.Table.CSV() {
		t.Fatalf("E12 tables diverge across worker counts:\n--- w1\n%s\n--- w8\n%s",
			a.Table.CSV(), b.Table.CSV())
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Fatalf("metric %s: %v vs %v", k, v, b.Metrics[k])
		}
	}
}

// TestE12OptIn: E12 stays out of IDs()/RunAll so the committed `-exp all`
// transcripts are untouched by its existence.
func TestE12OptIn(t *testing.T) {
	for _, id := range IDs() {
		if id == "E12" {
			t.Fatal("E12 leaked into the registry ID list")
		}
	}
	if _, err := Run("E12", Options{Trials: 2, Seed: 1, Faults: "krakens"}); err == nil ||
		!strings.Contains(err.Error(), "kraken") {
		t.Errorf("bad fault spec error = %v", err)
	}
}

// TestDescribe: the `-exp list` inventory covers the default registry in
// order plus the opt-ins, one line each.
func TestDescribe(t *testing.T) {
	lines := Describe()
	if len(lines) != len(IDs())+len(optIn) {
		t.Fatalf("%d description lines for %d experiments + %d opt-ins", len(lines), len(IDs()), len(optIn))
	}
	for i, id := range IDs() {
		if !strings.HasPrefix(lines[i], id+" ") {
			t.Fatalf("line %d = %q, want it to lead with %s", i, lines[i], id)
		}
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"E11", "E12", "E13", "E14", "abstract-tier"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("inventory missing %q:\n%s", want, joined)
		}
	}
}
