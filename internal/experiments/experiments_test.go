package experiments

import (
	"strings"
	"testing"
)

// fast returns low-cost options for the Monte-Carlo experiments; shape
// assertions below are chosen to be robust at these trial counts.
func fast() Options { return Options{Trials: 200, Seed: 1} }

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("expected 15 experiments, have %v", ids)
	}
	if ids[0] != "E1" || ids[9] != "E10" || ids[10] != "X1" || ids[14] != "X5" {
		t.Errorf("ID ordering wrong: %v", ids)
	}
	if _, err := Run("E99", fast()); err == nil {
		t.Error("unknown ID accepted")
	}
}

func TestRunAllProducesTables(t *testing.T) {
	results, err := RunAll(Options{Trials: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Table == nil || r.Table.Rows() == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		if r.Kind != "figure" && r.Kind != "table" {
			t.Errorf("%s: kind %q", r.ID, r.Kind)
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s: no metrics", r.ID)
		}
		want := "(R)"
		if strings.HasPrefix(r.ID, "X") {
			want = "(extension)"
		}
		if out := r.Table.String(); !strings.Contains(out, want) {
			t.Errorf("%s: table title must carry the %q marker", r.ID, want)
		}
	}
}

// TestWorkersBitIdentity pins the parallel-harness contract at the
// experiment level: any Workers count must regenerate byte-identical
// artifacts — same table CSV, same metrics — for the Monte-Carlo-heavy
// experiments the pool actually parallelizes (E1 sweeps, E6 dual sweeps,
// the E10 campaign) and for a concurrent RunMany batch.
func TestWorkersBitIdentity(t *testing.T) {
	for _, id := range []string{"E1", "E6", "E10"} {
		serial, err := Run(id, Options{Trials: 60, Seed: 9, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Run(id, Options{Trials: 60, Seed: 9, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if s, p := serial.Table.CSV(), parallel.Table.CSV(); s != p {
			t.Errorf("%s: table differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", id, s, p)
		}
		if len(serial.Metrics) != len(parallel.Metrics) {
			t.Errorf("%s: metric count differs", id)
		}
		for k, v := range serial.Metrics {
			if pv, ok := parallel.Metrics[k]; !ok || pv != v {
				t.Errorf("%s: metric %s = %v parallel vs %v serial", id, k, pv, v)
			}
		}
	}

	// RunMany: concurrent experiment execution preserves order and content.
	ids := []string{"E2", "E3", "E10"}
	serial, err := RunMany(ids, Options{Trials: 40, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(ids, Options{Trials: 40, Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if serial[i].ID != ids[i] || parallel[i].ID != ids[i] {
			t.Fatalf("result order broken: %s / %s at %d", serial[i].ID, parallel[i].ID, i)
		}
		if serial[i].Table.CSV() != parallel[i].Table.CSV() {
			t.Errorf("%s: RunMany table differs between widths", ids[i])
		}
	}
}

// TestE1RangeClaim locks the abstract's headline: BER ≤ 1e-3 at 300 m
// round trip in the river, across orientations.
func TestE1RangeClaim(t *testing.T) {
	res, err := E1RangeRiver(fast())
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Metrics["range_at_target"]; r < 280 {
		t.Errorf("river range %v m, paper claims >300", r)
	}
	// Worst Monte-Carlo BER at 300 m stays near the target (sampling
	// noise allows a small excursion).
	if b := res.Metrics["worst_ber_at_300m"]; b > 5e-3 {
		t.Errorf("worst BER at 300 m = %v", b)
	}
}

// TestE3FifteenX locks the 15× head-to-head claim.
func TestE3FifteenX(t *testing.T) {
	res, err := E3HeadToHead(fast())
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Metrics["range_ratio"]
	if ratio < 11 || ratio > 19 {
		t.Errorf("range ratio %.1f×, paper claims 15×", ratio)
	}
	if res.Metrics["vab_range_m"] <= res.Metrics["pab_range_m"] {
		t.Error("VAB must beat the baseline")
	}
	// The decomposition terms must be positive and sum to more than the
	// ratio implies (fading nonlinearity absorbs the rest).
	if res.Metrics["node_gain_gap_db"] < 20 {
		t.Errorf("node gain gap %.1f dB implausibly small", res.Metrics["node_gain_gap_db"])
	}
}

func TestE2OrderingAcrossRange(t *testing.T) {
	res, err := E2SNRComparison(fast())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["vab_minus_pab_db"] < 30 {
		t.Errorf("VAB-PAB SNR gap %.1f dB too small", res.Metrics["vab_minus_pab_db"])
	}
}

// TestE4OrientationClaim locks "across orientations": the Van Atta range is
// flat over ±75° while the specular baseline collapses.
func TestE4OrientationClaim(t *testing.T) {
	res, err := E4Orientation(fast())
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Metrics["vab_range_spread"]; s > 0.1 {
		t.Errorf("van atta range spread %.2f across orientations", s)
	}
	if res.Metrics["vab_min_range_m"] < 280 {
		t.Errorf("worst-case orientation range %v m", res.Metrics["vab_min_range_m"])
	}
}

func TestE5ScalingMonotone(t *testing.T) {
	res, err := E5ElementScaling(fast())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, n := range []string{"range_n1", "range_n2", "range_n4", "range_n8", "range_n16", "range_n32"} {
		r := res.Metrics[n]
		if r <= prev {
			t.Fatalf("%s = %v not monotone", n, r)
		}
		prev = r
	}
	// Doubling elements gives ~6 dB → with ~31 dB/decade round-trip slope
	// roughly 1.55× range per doubling: 16 vs 1 ⇒ ~5×.
	g := res.Metrics["range_gain_16_vs_1"]
	if g < 3.5 || g > 8 {
		t.Errorf("16-element range gain %v×, want ~5×", g)
	}
}

// TestE6OceanClaim locks the first-ocean-validation claim: the system
// operates at useful coastal ranges, at reduced reach versus the river.
func TestE6OceanClaim(t *testing.T) {
	res, err := E6Ocean(fast())
	if err != nil {
		t.Fatal(err)
	}
	or := res.Metrics["ocean_range_at_target"]
	rr := res.Metrics["river_range_at_target"]
	if or < 60 {
		t.Errorf("ocean range %v m too short for the validation claim", or)
	}
	if or >= rr {
		t.Errorf("ocean range %v m should trail river %v m", or, rr)
	}
}

func TestE7ThroughputTradeoff(t *testing.T) {
	res, err := E7Throughput(fast())
	if err != nil {
		t.Fatal(err)
	}
	// Range falls monotonically with chip rate.
	prev := 1e18
	for _, k := range []string{"range_at_125cps", "range_at_250cps", "range_at_500cps", "range_at_1000cps", "range_at_2000cps"} {
		r := res.Metrics[k]
		if r >= prev {
			t.Fatalf("%s = %v not monotone decreasing", k, r)
		}
		prev = r
	}
}

func TestE8PowerClaims(t *testing.T) {
	res, err := E8PowerBudget(fast())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["backscatter_uw"] > 100 {
		t.Errorf("backscatter power %v µW not ultra-low-power", res.Metrics["backscatter_uw"])
	}
	if res.Metrics["harvest_breakeven_m"] < 20 || res.Metrics["harvest_breakeven_m"] > 400 {
		t.Errorf("harvest break-even %v m implausible", res.Metrics["harvest_breakeven_m"])
	}
	if res.Metrics["battery_years"] < 1 {
		t.Errorf("battery life %v years too short", res.Metrics["battery_years"])
	}
}

func TestE9MatchingClaims(t *testing.T) {
	res, err := E9Matching(fast())
	if err != nil {
		t.Fatal(err)
	}
	if g := res.Metrics["matched_depth_gain_db"]; g < 2 || g > 12 {
		t.Errorf("matched depth gain %v dB implausible", g)
	}
	if bw := res.Metrics["match_bw_hz"]; bw < 100 || bw > 5000 {
		t.Errorf("match bandwidth %v Hz implausible", bw)
	}
}

// TestE10CampaignScale locks the >1,500-trials claim at full options.
func TestE10CampaignScale(t *testing.T) {
	res, err := E10Campaign(Options{Seed: 5}) // default trial counts
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Metrics["total_trials"]; n < 1300 {
		t.Errorf("campaign ran %v trials, abstract claims >1,500", n)
	}
	if d := res.Metrics["river_300m_delivery"]; d < 0.8 {
		t.Errorf("river 300 m delivery %v", d)
	}
}

func TestResultsDeterministicAcrossRuns(t *testing.T) {
	a, err := E1RangeRiver(Options{Trials: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := E1RangeRiver(Options{Trials: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.CSV() != b.Table.CSV() {
		t.Error("same seed should reproduce identical tables")
	}
}

// TestX1RangingAccuracy locks the extension claim: sub-meter-class ranging
// from the backscatter time of flight.
func TestX1RangingAccuracy(t *testing.T) {
	res, err := X1Ranging(Options{Trials: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w := res.Metrics["worst_error_m"]; w > 3 {
		t.Errorf("worst ranging error %v m", w)
	}
}

// TestX2MaryTradeoff locks the extension claim: at equal switching rate
// and chip energy, M-ary FSK multiplies throughput while keeping range
// within a few percent — orthogonal FSK's per-bit efficiency offsets the
// higher per-symbol threshold, so the binding constraint is transducer
// bandwidth, not detection.
func TestX2MaryTradeoff(t *testing.T) {
	res, err := X2MaryThroughput(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2 := res.Metrics["range_2fsk_m"]
	for _, k := range []string{"range_4fsk_m", "range_8fsk_m"} {
		r := res.Metrics[k]
		if r < 0.8*r2 || r > 1.2*r2 {
			t.Errorf("%s = %v strays from 2-FSK's %v beyond MC noise", k, r, r2)
		}
	}
}

// TestX3TiersAgreeWithinMargin locks the cross-tier validation: the
// waveform tier may trail the budget tier (it carries more impairments),
// but not by a chasm at operating ranges.
func TestX3TiersAgreeWithinMargin(t *testing.T) {
	res, err := X3WaveformValidation(Options{Trials: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if gap := res.Metrics["worst_delivery_gap"]; gap > 0.75 {
		t.Errorf("budget tier over-promises by %.0f points somewhere", 100*gap)
	}
}

// TestX4RatioRobust locks the sensitivity claim: the 15× comparison stays
// in double digits under ±3 dB perturbation of either calibrated constant.
func TestX4RatioRobust(t *testing.T) {
	res, err := X4Sensitivity(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo := res.Metrics["ratio_min"]; lo < 9 {
		t.Errorf("ratio collapses to %.1f× under perturbation", lo)
	}
	if hi := res.Metrics["ratio_max"]; hi > 25 {
		t.Errorf("ratio balloons to %.1f× under perturbation", hi)
	}
}

// TestX5EnvironmentTrends locks the physical trends: wind costs range
// steeply (noise floor), while warming *helps* slightly at 18.5 kHz — the
// band sits below the MgSO4 relaxation, whose frequency rises with
// temperature and drags absorption down with it.
func TestX5EnvironmentTrends(t *testing.T) {
	res, err := X5Environment(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["range_at_18mps"] >= res.Metrics["range_at_1mps"]/2 {
		t.Error("storm winds should cost range heavily")
	}
	if res.Metrics["range_at_28C"] <= res.Metrics["range_at_4C"] {
		t.Error("warming should slightly extend range at 18.5 kHz (sub-relaxation band)")
	}
	if res.Metrics["range_at_12mps"] < 30 {
		t.Errorf("range %v m at 12 m/s wind implausibly short", res.Metrics["range_at_12mps"])
	}
}
