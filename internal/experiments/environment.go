package experiments

import (
	"fmt"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// X5Environment sweeps the deployment conditions a coastal operator cannot
// choose — water temperature (seasons) and wind speed (weather) — and
// reports the achievable range at the paper's BER 10⁻³ point. Temperature
// moves absorption; wind moves the ambient noise floor; both act through
// the same physical models that produce every other figure.
func X5Environment(opts Options) (*Result, error) {
	t := sim.NewTable("X5 (extension): Range sensitivity to deployment conditions (coastal ocean, BER 1e-3)",
		"condition", "value", "noise_bin_db", "absorption_db_km", "max_range_m")
	res := &Result{ID: "X5", Title: "Environmental sensitivity", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	eval := func(label string, mutate func(*ocean.Environment)) float64 {
		env := ocean.AtlanticCoastal()
		mutate(env)
		if err := env.Validate(); err != nil {
			panic(fmt.Sprintf("experiments: X5 preset: %v", err))
		}
		b := core.NewLinkBudget(env, newVanAtta(env, core.DefaultNodeElements))
		b.ReaderDepth, b.NodeDepth = 3, 4
		r := b.MaxRange(targetBER, 10000)
		t.AddRowf(label, "",
			env.NoiseLevel(core.DefaultCarrierHz, 500),
			env.AbsorptionMid(core.DefaultCarrierHz), r)
		return r
	}

	// Seasonal temperature sweep at the reference wind.
	for _, temp := range []float64{4, 12, 20, 28} {
		r := eval(fmt.Sprintf("temperature %2.0f C", temp), func(e *ocean.Environment) {
			e.Temperature = temp
		})
		res.Metrics[fmt.Sprintf("range_at_%.0fC", temp)] = r
	}
	// Weather sweep at the reference temperature.
	for _, wind := range []float64{1, 4, 7, 12, 18} {
		r := eval(fmt.Sprintf("wind %2.0f m/s", wind), func(e *ocean.Environment) {
			e.WindSpeed = wind
		})
		res.Metrics[fmt.Sprintf("range_at_%.0fmps", wind)] = r
	}
	res.Notes = append(res.Notes,
		"wind is the dominant environmental lever: the Wenz noise floor rises ~7.5·√w dB, directly shrinking the detection margin",
		"temperature cuts the other way than intuition suggests: 18.5 kHz sits below the MgSO4 relaxation, whose frequency rises with temperature, so warm water absorbs slightly *less* and summer range is marginally longer")
	return res, nil
}
