package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vab/internal/faults/netfaults"
	"vab/internal/gateway"
	"vab/internal/sim"
)

// E14 models the shore-side delivery path under network chaos: a gateway
// session streaming sequence-numbered reading batches through the
// netfaults schedule, with the resume protocol off (a disconnect loses
// the gap) versus on (the replay ring recovers it, up to the window).
//
// The model is arithmetic, not sockets: each frame write consults the
// same pure (seed, conn, op) schedule the live netfaults.Conn wrapper
// uses (Engine.WriteOp), payloads run through the real MsgSeqBatch
// codec, and reconnect recovery runs through the real gateway.ReplayRing
// — but no goroutine, socket or wall clock is involved, so transcripts
// are byte-identical at any worker count. The live-TCP incarnation of
// the same machinery is exercised by the gateway churn soak test and the
// vabload harness, which measure real latency but are not byte-compared.
var e14Intensities = chaosIntensities // share E11's sweep axis

const (
	// e14Batch is the readings coalesced per MsgSeqBatch frame.
	e14Batch = 4
	// e14RingWindow is the modeled replay ring capacity: small enough
	// that sustained chaos at high intensity overflows it, exercising the
	// aged-out fallback to live-only delivery.
	e14RingWindow = 32
	// e14BaseTime seeds synthetic reading timestamps (no wall clock in
	// experiments, like E13).
	e14BaseTime = int64(1700000000000000000)
)

// netchaosCell is one (intensity × resume arm) outcome.
type netchaosCell struct {
	intensity float64
	resume    bool

	published int
	delivered int
	replayed  int
	agedOut   int // readings permanently lost to ring age-out (resume arm)
	sessions  int
	drops     int
	tears     int
	corrupts  int
	wireBytes int64
	delayMs   float64
	writes    int
}

func (c *netchaosCell) deliveryRatio() float64 {
	if c.published == 0 {
		return 0
	}
	return float64(c.delivered) / float64(c.published)
}

func (c *netchaosCell) meanDelayMs() float64 {
	if c.writes == 0 {
		return 0
	}
	return c.delayMs / float64(c.writes)
}

// e14Reading synthesizes the reading published under seq.
func e14Reading(seq uint64) gateway.Reading {
	return gateway.Reading{
		NodeAddr:     byte(seq%4 + 1),
		Seq:          byte(seq),
		Count:        uint32(seq),
		TempC:        15 + float64(seq%40)*0.25,
		PressureMbar: 1200 + float64(seq%300),
		SNRdB:        12 + float64(seq%16)*0.5,
		Time:         time.Unix(0, e14BaseTime+int64(seq)*1e6).UTC(),
	}
}

// runNetchaosCell streams `readings` readings through one modeled
// session. Both arms of one intensity share the engine seed, so they
// face the same storm and differ only in the recovery protocol.
func runNetchaosCell(seed int64, intensity float64, resume bool, readings int) (netchaosCell, error) {
	cell := netchaosCell{intensity: intensity, resume: resume, sessions: 1}
	eng, err := netfaults.NewEngine(seed, netfaults.Chaos(intensity))
	if err != nil {
		return cell, err
	}
	ring := gateway.NewReplayRing(e14RingWindow)

	conn, op := uint64(0), uint64(0)
	var lastSeq uint64 // last sequence the subscriber has
	connected := true
	outage := 0 // flushes remaining before the subscriber is back
	// Outage length scales with intensity: a rougher network also slows
	// the re-dial (backoff under repeated failures).
	outageFlushes := 1 + int(4*intensity)

	// sendFrame pushes one sequenced frame through the chaos schedule;
	// false means the session died mid-frame (nothing delivered).
	sendFrame := func(firstSeq uint64, rds []gateway.Reading) (bool, error) {
		payload, err := gateway.AppendSeqBatch(nil, firstSeq, rds)
		if err != nil {
			return false, err
		}
		frame, err := gateway.EncodeFrame(gateway.MsgSeqBatch, payload)
		if err != nil {
			return false, err
		}
		o := eng.WriteOp(conn, op)
		op++
		cell.writes++
		cell.delayMs += o.DelayMs
		switch {
		case o.Drop:
			cell.drops++
			return false, nil
		case o.Partial:
			cell.tears++
			return false, nil
		case o.Corrupt:
			// No integrity check in the wire format: model the corrupted
			// frame as detected by the codec's strict decode rules (the
			// common case) — the subscriber abandons the session.
			cell.corrupts++
			return false, nil
		}
		cell.wireBytes += int64(len(frame))
		return true, nil
	}
	disconnect := func() {
		connected = false
		outage = outageFlushes
		conn++ // a re-dial is a fresh connection with a fresh schedule
		op = 0
	}

	var pend []gateway.Reading
	next := uint64(1)
	for int(next) <= readings {
		// Publish one flush worth of readings into the ring.
		pend = pend[:0]
		pendFirst := next
		for len(pend) < e14Batch && int(next) <= readings {
			rd := e14Reading(next)
			ring.Append(next, rd)
			pend = append(pend, rd)
			next++
		}
		cell.published += len(pend)

		if !connected {
			outage--
			if outage > 0 {
				continue // still re-dialing; the stream moves on without us
			}
			connected = true
			cell.sessions++
			if resume {
				// Replay everything recoverable, including this flush
				// (it is already in the ring).
				buf, firstSeq := ring.Since(lastSeq, nil)
				if firstSeq > lastSeq+1 {
					cell.agedOut += int(firstSeq - lastSeq - 1)
				}
				ok := true
				for off := 0; off < len(buf) && ok; off += e14Batch {
					end := off + e14Batch
					if end > len(buf) {
						end = len(buf)
					}
					sent, err := sendFrame(firstSeq+uint64(off), buf[off:end])
					if err != nil {
						return cell, err
					}
					if sent {
						cell.replayed += end - off
						cell.delivered += end - off
						lastSeq = firstSeq + uint64(end) - 1
					} else {
						disconnect()
						ok = false
					}
				}
				continue // current flush was part of the replay (or died)
			}
			// Live-only: the outage gap is gone; rejoin at the stream head.
			if pendFirst-1 > lastSeq {
				lastSeq = pendFirst - 1
			}
		}

		sent, err := sendFrame(pendFirst, pend)
		if err != nil {
			return cell, err
		}
		if sent {
			cell.delivered += len(pend)
			lastSeq = pendFirst + uint64(len(pend)) - 1
		} else {
			disconnect()
		}
	}
	return cell, nil
}

// E14NetChaos runs the network-chaos campaign: delivery through the
// shore-side gateway session versus chaos intensity, with session resume
// off and on. Opt-in like E11–E13 (run with `-exp e14`), and fully
// deterministic: every schedule derives from Options.Seed through the
// netfaults pure-plan engine, so two invocations are byte-identical at
// any -workers — the property the netchaos CI leg checks.
func E14NetChaos(opts Options) (*Result, error) {
	readings := opts.trials(2000)

	type job struct {
		intensity float64
		resume    bool
		seed      int64
	}
	var jobs []job
	for i, in := range e14Intensities {
		for _, res := range []bool{false, true} {
			// Shared seed per intensity: both arms face the same storm.
			jobs = append(jobs, job{in, res, opts.Seed + 4100 + int64(i)*53})
		}
	}
	cells := make([]netchaosCell, len(jobs))
	errs := make([]error, len(jobs))
	workers := opts.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var nextJob atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(nextJob.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				cells[i], errs[i] = runNetchaosCell(j.seed, j.intensity, j.resume, readings)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("netchaos cell %d: %w", i, err)
		}
	}

	t := sim.NewTable(fmt.Sprintf("E14: Network chaos — gateway delivery over %d readings/cell, resume off vs on (ring %d)",
		readings, e14RingWindow),
		"intensity", "resume", "delivery_pct", "replayed", "aged_out", "sessions",
		"faults", "mean_delay_ms")
	res := &Result{ID: "E14", Title: "Network chaos campaign", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	var sumOff, sumOn float64
	var faulted int
	for i := range cells {
		c := &cells[i]
		arm := "off"
		if c.resume {
			arm = "on"
		}
		t.AddRowf(c.intensity, arm, 100*c.deliveryRatio(), c.replayed, c.agedOut,
			c.sessions, c.drops+c.tears+c.corrupts, c.meanDelayMs())
		res.Metrics[fmt.Sprintf("delivery_%s_%.2f", arm, c.intensity)] = c.deliveryRatio()
		if c.intensity > 0 {
			if c.resume {
				sumOn += c.deliveryRatio()
			} else {
				sumOff += c.deliveryRatio()
			}
			faulted++
		}
	}
	n := float64(faulted) / 2
	res.Metrics["mean_faulted_delivery_off"] = sumOff / n
	res.Metrics["mean_faulted_delivery_on"] = sumOn / n
	res.Metrics["resume_gain"] = (sumOn - sumOff) / n
	res.Notes = append(res.Notes,
		fmt.Sprintf("mean delivery under chaos: %.0f%% live-only, %.0f%% with resume (gain %+.0f pts)",
			100*res.Metrics["mean_faulted_delivery_off"],
			100*res.Metrics["mean_faulted_delivery_on"],
			100*res.Metrics["resume_gain"]),
		"resume stack: stream sequencing + server replay ring + MsgResume/MsgSeqBatch recovery (see DESIGN.md gateway resilience contract)",
		"schedule: netfaults pure (seed, conn, op) plans — the same draws a live netfaults.Conn would make")
	return res, nil
}
