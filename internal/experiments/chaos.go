package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vab/internal/core"
	"vab/internal/faults"
	"vab/internal/mac"
	"vab/internal/ocean"
	"vab/internal/reader"
	"vab/internal/sim"
)

// chaosIntensities is the fault-intensity sweep E11 traces degradation
// curves over.
var chaosIntensities = []float64{0, 0.25, 0.5, 0.75, 1}

// chaosCell is one (intensity × recovery arm) campaign cell outcome.
type chaosCell struct {
	intensity float64
	recovery  bool

	nodes       int
	cycles      int
	polled      int
	delivered   int
	probes      int
	quarantines int
	restored    int
	liveNodes   int
	frames      int64
	corrected   int64
}

// runChaosCell runs one cell: a four-node river fleet polled for cycles
// cycles under the scaled scenario, with the recovery stack (reader
// reacquisition, MAC probation, rate stepdown) on or off. Every cell
// builds its own design — element faults mutate the array, so sharing one
// across concurrent cells would race (and NewFleet additionally clones it
// per node). workers widens the fleet's per-cycle poll pool; cell output
// is bit-identical at any width.
func runChaosCell(sc faults.Scenario, intensity float64, recovery bool,
	cycles int, seed int64, workers int) (chaosCell, error) {

	cell := chaosCell{intensity: intensity, recovery: recovery, nodes: 4, cycles: cycles}
	env := ocean.CharlesRiver()
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return cell, err
	}
	base := core.SystemConfig{Env: env, Design: design, Range: 1, Seed: seed}
	policy := mac.PollPolicy{MaxRetries: 2, BackoffSlots: 8, DropAfter: 3}
	if recovery {
		policy.Probation = true
		policy.ProbeBackoffBase = 2
		policy.ProbeBackoffMax = 8
		base.Reader = reader.DefaultConfig()
		base.Reader.Reacquire = true
	}
	fleet, err := core.NewFleet(base, []core.NodePlacement{
		{Addr: 1, Range: 40},
		{Addr: 2, Range: 70, Orientation: 0.4},
		{Addr: 3, Range: 100, Orientation: -0.6},
		{Addr: 4, Range: 130, Orientation: 0.9},
	}, policy)
	if err != nil {
		return cell, err
	}
	if recovery {
		rc, err := mac.NewRateController([]float64{125, 250, 500}, 12)
		if err != nil {
			return cell, err
		}
		fleet.EnableRateAdaptation(rc)
	}
	eng, err := faults.NewEngine(sc.Scale(intensity))
	if err != nil {
		return cell, err
	}
	fleet.SetFaultEngine(eng)
	fleet.SetWorkers(workers)
	fleet.Deploy(3600)

	for c := 0; c < cycles; c++ {
		_, rep, err := fleet.RunCycle()
		if err != nil {
			return cell, err
		}
		cell.polled += rep.Polled
		cell.delivered += rep.Delivered
		cell.probes += rep.Probes
	}
	for _, st := range fleet.Nodes() {
		cell.quarantines += st.QuarantineEntries
		if !st.Dropped && !st.Quarantined {
			cell.liveNodes++
		}
		if st.QuarantineEntries > 0 && !st.Quarantined {
			cell.restored++
		}
	}
	cell.frames, cell.corrected = fleet.LinkQuality()
	return cell, nil
}

// deliveryRatio returns delivered readings over desired readings (one per
// node per cycle). Dividing by polls instead would flatter a schedule that
// permanently dropped its nodes — a dropped node is never polled, yet its
// readings are exactly what the deployment lost.
func (c *chaosCell) deliveryRatio() float64 {
	want := c.nodes * c.cycles
	if want == 0 {
		return 0
	}
	return float64(c.delivered) / float64(want)
}

// correctedPerFrame is the residual-BER proxy: FEC corrections per
// delivered frame (delivered traffic closer to the FEC cliff corrects
// more).
func (c *chaosCell) correctedPerFrame() float64 {
	if c.frames == 0 {
		return 0
	}
	return float64(c.corrected) / float64(c.frames)
}

// E11Chaos runs the chaos campaign: delivery ratio and link quality versus
// fault intensity, with the recovery stack off and on. The scenario comes
// from Options.Faults (default "chaos": every fault class layered). E11 is
// opt-in — it is not part of IDs()/RunAll, so seeded `-exp all` transcripts
// are unchanged by its existence; run it with `-exp e11`.
//
// Fixed (Seed, Trials, Faults) make the run fully deterministic: every
// fleet, engine and cell seed derives from Options.Seed, so two invocations
// are byte-identical — the property the chaos-soak CI leg checks.
func E11Chaos(opts Options) (*Result, error) {
	spec := opts.Faults
	if spec == "" {
		spec = "chaos"
	}
	sc, err := faults.Parse(spec, opts.Seed+9001)
	if err != nil {
		return nil, err
	}
	cycles := opts.trials(30)

	type job struct {
		intensity float64
		recovery  bool
		seed      int64
	}
	var jobs []job
	for i, in := range chaosIntensities {
		for _, rec := range []bool{false, true} {
			// Both arms of one intensity share a fleet seed: same channels,
			// same fault draws, only the recovery stack differs.
			jobs = append(jobs, job{in, rec, opts.Seed + 1700 + int64(i)*37})
		}
	}
	cells := make([]chaosCell, len(jobs))
	errs := make([]error, len(jobs))
	fleetWorkers := opts.workers() // per-cell fleet poll-pool width
	workers := fleetWorkers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				cells[i], errs[i] = runChaosCell(sc, j.intensity, j.recovery, cycles, j.seed, fleetWorkers)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos cell %d: %w", i, err)
		}
	}

	t := sim.NewTable(fmt.Sprintf("E11: Chaos campaign — scenario %q, %d cycles/cell, recovery off vs on", spec, cycles),
		"intensity", "recovery", "delivery_pct", "corrected_per_frame",
		"quarantines", "probes", "restored", "live_nodes")
	res := &Result{ID: "E11", Title: "Chaos campaign", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	var sumOff, sumOn float64
	var faulted int
	for _, c := range cells {
		arm := "off"
		if c.recovery {
			arm = "on"
		}
		t.AddRowf(c.intensity, arm, 100*c.deliveryRatio(), c.correctedPerFrame(),
			c.quarantines, c.probes, c.restored, c.liveNodes)
		res.Metrics[fmt.Sprintf("delivery_%s_%.2f", arm, c.intensity)] = c.deliveryRatio()
		if c.intensity > 0 {
			if c.recovery {
				sumOn += c.deliveryRatio()
			} else {
				sumOff += c.deliveryRatio()
			}
			faulted++
		}
	}
	n := float64(faulted) / 2
	res.Metrics["mean_faulted_delivery_off"] = sumOff / n
	res.Metrics["mean_faulted_delivery_on"] = sumOn / n
	res.Metrics["recovery_gain"] = (sumOn - sumOff) / n
	res.Notes = append(res.Notes,
		fmt.Sprintf("mean delivery under faults: %.0f%% without recovery, %.0f%% with (gain %+.0f pts)",
			100*res.Metrics["mean_faulted_delivery_off"],
			100*res.Metrics["mean_faulted_delivery_on"],
			100*res.Metrics["recovery_gain"]),
		"recovery stack: reader burst reacquisition + MAC probation (quarantine & backed-off re-probes) + SNR-triggered rate stepdown")
	return res, nil
}
