package experiments

import (
	"fmt"
	"math"
	"math/cmplx"

	"vab/internal/piezo"
	"vab/internal/sim"
)

// e9Matching builds the electro-mechanical co-design figure: modulation
// contrast versus frequency for the matched VAB switch states against the
// unmatched prior-art states, plus the L-section match bandwidth. This is
// the experiment that shows why the paper co-designs matching networks with
// the array: the piezo's resonance confines useful modulation to a narrow
// band, and an unmatched switch wastes a large fraction of the contrast
// even at resonance.
func e9Matching(opts Options) (*Result, error) {
	tr := piezo.MustDefault()
	fs := tr.SeriesResonance()

	t := sim.NewTable("E9 (R): Modulation contrast vs frequency — matched vs unmatched switching",
		"freq_hz", "depth_matched", "depth_unmatched", "chain_matched_db", "chain_unmatched_db", "match_refl")
	res := &Result{ID: "E9", Title: "Matching and modulation depth", Kind: "figure", Table: t,
		Metrics: map[string]float64{}}

	m, err := piezo.DesignLSection(tr.Impedance(fs), 50, fs)
	if err != nil {
		return nil, fmt.Errorf("matching design: %w", err)
	}

	unOn, unOff := piezo.ShortLoad, complex(30, 0) // prior-art switch states
	for _, rel := range []float64{0.90, 0.94, 0.97, 1.00, 1.03, 1.06, 1.10} {
		f := fs * rel
		matched := tr.ModulationDepth(f, piezo.ShortLoad, tr.MatchedLoad(f))
		unmatched := tr.ModulationDepth(f, unOn, unOff)
		resp := cmplx.Abs(tr.Response(f))
		chainM := 20 * math.Log10(matched*resp*resp*2/math.Pi)
		chainU := 20 * math.Log10(unmatched*resp*resp*2/math.Pi)
		t.AddRowf(f, matched, unmatched, chainM, chainU, m.MatchQuality(f, tr.Impedance(f)))
	}

	depthGain := 20 * math.Log10(
		tr.ModulationDepth(fs, piezo.ShortLoad, tr.MatchedLoad(fs))/
			tr.ModulationDepth(fs, unOn, unOff))
	res.Metrics["matched_depth_gain_db"] = depthGain

	// -10 dB match bandwidth of the L-section.
	var lo, hi float64
	for f := fs; f > fs*0.5; f -= fs / 400 {
		if m.MatchQuality(f, tr.Impedance(f)) > 0.316 {
			lo = f
			break
		}
	}
	for f := fs; f < fs*1.5; f += fs / 400 {
		if m.MatchQuality(f, tr.Impedance(f)) > 0.316 {
			hi = f
			break
		}
	}
	if hi > lo && lo > 0 {
		res.Metrics["match_bw_hz"] = hi - lo
		res.Notes = append(res.Notes,
			fmt.Sprintf("-10 dB match bandwidth: %.0f Hz", hi-lo))
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("matched switching recovers %.1f dB of modulation contrast at resonance", depthGain),
		"the backscatter chain (depth × transducer response²) collapses a few percent off resonance: subcarriers must fit inside the piezo bandwidth")
	return res, nil
}
