package experiments

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// chaosCurve extracts one arm's delivery curve, ordered by intensity.
func chaosCurve(res *Result, arm string) []float64 {
	curve := make([]float64, len(chaosIntensities))
	for i, in := range chaosIntensities {
		curve[i] = res.Metrics[fmt.Sprintf("delivery_%s_%.2f", arm, in)]
	}
	return curve
}

// TestE11DegradationAndRecovery pins the chaos campaign's two headline
// properties: delivery degrades monotonically as fault intensity rises,
// and the recovery stack measurably beats the bare stack under faults.
func TestE11DegradationAndRecovery(t *testing.T) {
	res, err := Run("E11", Options{Trials: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || res.Table.Rows() != 2*len(chaosIntensities) {
		t.Fatalf("table rows = %d, want %d", res.Table.Rows(), 2*len(chaosIntensities))
	}

	for _, arm := range []string{"off", "on"} {
		curve := chaosCurve(res, arm)
		if curve[0] < 0.9 {
			t.Errorf("arm %s: fault-free delivery %.3f, want near-perfect", arm, curve[0])
		}
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1]+1e-12 {
				t.Errorf("arm %s: delivery rose from %.4f to %.4f at intensity %.2f — not a degradation curve",
					arm, curve[i-1], curve[i], chaosIntensities[i])
			}
		}
		if last := curve[len(curve)-1]; last > 0.5 {
			t.Errorf("arm %s: full-intensity chaos still delivers %.3f — faults implausibly benign", arm, last)
		}
	}

	if gain := res.Metrics["recovery_gain"]; gain <= 0.02 {
		t.Errorf("recovery_gain = %.4f, want a measurable (>0.02) win for the recovery stack", gain)
	}
	if res.Metrics["mean_faulted_delivery_on"] <= res.Metrics["mean_faulted_delivery_off"] {
		t.Error("recovery arm did not beat the bare arm under faults")
	}
}

// TestE11Deterministic: identical Options must regenerate byte-identical
// artifacts, and the worker count must not leak into them.
func TestE11Deterministic(t *testing.T) {
	opts := Options{Trials: 6, Seed: 11, Faults: "shrimp+shadowing"}
	opts.Workers = 1
	a, err := Run("E11", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	b, err := Run("E11", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.CSV() != b.Table.CSV() {
		t.Errorf("tables diverge across reruns:\n--- workers=1\n%s\n--- workers=4\n%s",
			a.Table.CSV(), b.Table.CSV())
	}
	if len(a.Metrics) != len(b.Metrics) {
		t.Fatalf("metric sets differ: %d vs %d", len(a.Metrics), len(b.Metrics))
	}
	keys := make([]string, 0, len(a.Metrics))
	for k := range a.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a.Metrics[k] != b.Metrics[k] {
			t.Errorf("metric %s: %v vs %v", k, a.Metrics[k], b.Metrics[k])
		}
	}
}

// TestE11OptIn: E11 resolves through Run but stays out of IDs()/RunAll so
// `-exp all` transcripts are untouched by its existence.
func TestE11OptIn(t *testing.T) {
	for _, id := range IDs() {
		if id == "E11" {
			t.Fatal("E11 leaked into the registry ID list")
		}
	}
	if _, err := Run("E11", Options{Trials: 2, Seed: 1, Faults: "brownout"}); err != nil {
		t.Fatalf("opt-in lookup failed: %v", err)
	}
	if _, err := Run("E11", Options{Trials: 2, Seed: 1, Faults: "krakens"}); err == nil ||
		!strings.Contains(err.Error(), "kraken") {
		t.Errorf("bad fault spec error = %v", err)
	}
}
