package experiments

import (
	"fmt"
	"time"

	"vab/internal/core"
	"vab/internal/gateway"
	"vab/internal/link"
	"vab/internal/mac"
	"vab/internal/node"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// e13Batches is the payload-batch sweep: the v1 single-reading format,
// then packed payloads up to the largest batch a link frame carries.
var e13Batches = []int{1, 4, 6, node.MaxPackedBatch}

// e13Cell is one batch configuration's measured outcome.
type e13Cell struct {
	batch        int
	payloadBytes int
	frames       int
	readings     int
	v1WireBytes  int
	v2WireBytes  int
}

// e13BaseTime seeds the synthetic reading timestamps: experiments must
// not consult the wall clock, or seeded transcripts would differ per run.
const e13BaseTime = int64(1700000000000000000)

// runE13Cell polls a two-node river fleet for cycles cycles with the
// given sensor batch and accounts three per-reading costs: acoustic link
// payload bytes (the fixed frame payload over the readings it carried),
// and shore-side gateway wire bytes under the v1 per-reading format and
// the v2 batched format. Timestamps are synthesized deterministically
// from the reading index, standing in for the poll clock.
func runE13Cell(batch, cycles int, seed int64, workers int) (e13Cell, error) {
	cell := e13Cell{batch: batch, payloadBytes: node.PayloadSize}
	if batch > 1 {
		cell.payloadBytes = node.PackedPayloadSize(batch)
	}
	env := ocean.CharlesRiver()
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return cell, err
	}
	base := core.SystemConfig{Env: env, Design: design, Range: 1, Seed: seed}
	if batch > 1 {
		base.SensorBatch = batch
	}
	fleet, err := core.NewFleet(base, []core.NodePlacement{
		{Addr: 1, Range: 40},
		{Addr: 2, Range: 70, Orientation: 0.4},
	}, mac.DefaultPollPolicy())
	if err != nil {
		return cell, err
	}
	fleet.SetWorkers(workers)
	fleet.Deploy(3600)

	var batchBuf []byte
	var wire []gateway.Reading
	seqs := map[byte]byte{}
	for c := 0; c < cycles; c++ {
		readings, rep, err := fleet.RunCycle()
		if err != nil {
			return cell, err
		}
		cell.frames += rep.Delivered
		cell.readings += len(readings)
		// Shore-side forwarding cost for this cycle's readings. v1 frames
		// each reading; v2 coalesces the cycle into batch frames (split on
		// overflow), matching a gateway flushing once per poll cycle.
		wire = wire[:0]
		for _, r := range readings {
			seqs[r.Addr]++
			wire = append(wire, gateway.Reading{
				NodeAddr: r.Addr, Seq: seqs[r.Addr], Count: r.Reading.Count,
				TempC: r.Reading.TempC, PressureMbar: r.Reading.PressureMbar,
				SNRdB: r.SNRdB,
				Time:  time.Unix(0, e13BaseTime+int64(cell.readings)*250e6).UTC(),
			})
		}
		cell.v1WireBytes += len(wire) * gateway.V1FrameBytesPerReading
		for len(wire) > 0 {
			n := len(wire)
			for {
				batchBuf, err = gateway.AppendReadingBatch(batchBuf[:0], wire[:n])
				if err == gateway.ErrOversize && n > 1 {
					n /= 2
					continue
				}
				if err != nil {
					return cell, err
				}
				break
			}
			frame, err := gateway.EncodeFrame(gateway.MsgReadingBatch, batchBuf)
			if err != nil {
				return cell, err
			}
			cell.v2WireBytes += len(frame)
			wire = wire[n:]
		}
	}
	return cell, nil
}

// E13PackedPayloads regenerates the payload-batching table: delivered
// readings per response frame and bytes per reading — over the acoustic
// link and over the shore-side gateway wire — as the packed sensor batch
// grows from the v1 single-reading format to the largest batch a 64-byte
// link payload carries. The airtime story: a response frame costs a fixed
// poll regardless of payload, so batch k readings amortize the preamble,
// header and CRC k ways; the v2 gateway wire then delta-codes each batch
// against its base reading.
func E13PackedPayloads(opts Options) (*Result, error) {
	cycles := opts.trials(4)
	t := sim.NewTable(fmt.Sprintf(
		"E13 (R): Packed payload batching — readings per %d-byte link frame and bytes per reading", link.MaxPayload),
		"batch", "payload_B", "frames", "readings", "readings_per_frame",
		"link_B_per_reading", "v1_wire_B_per_reading", "v2_wire_B_per_reading", "wire_ratio")
	res := &Result{ID: "E13", Title: "Packed payload batching", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	for _, batch := range e13Batches {
		cell, err := runE13Cell(batch, cycles, opts.Seed+int64(batch)*7919, opts.workers())
		if err != nil {
			return nil, fmt.Errorf("E13 batch %d: %w", batch, err)
		}
		if cell.readings == 0 {
			return nil, fmt.Errorf("E13 batch %d: no readings delivered", batch)
		}
		rpf := float64(cell.readings) / float64(cell.frames)
		linkB := float64(cell.payloadBytes) / float64(batch)
		v1B := float64(cell.v1WireBytes) / float64(cell.readings)
		v2B := float64(cell.v2WireBytes) / float64(cell.readings)
		t.AddRowf(cell.batch, cell.payloadBytes, cell.frames, cell.readings,
			rpf, linkB, v1B, v2B, v1B/v2B)
		res.Metrics[fmt.Sprintf("readings_per_frame_b%d", batch)] = rpf
		res.Metrics[fmt.Sprintf("v2_wire_bytes_per_reading_b%d", batch)] = v2B
		res.Metrics[fmt.Sprintf("wire_ratio_b%d", batch)] = v1B / v2B
	}
	maxB := node.MaxPackedBatch
	res.Metrics["max_batch"] = float64(maxB)
	res.Notes = append(res.Notes,
		fmt.Sprintf("one %d-byte link payload carries up to %d delta-coded readings (worst-case packed size %d B)",
			link.MaxPayload, maxB, node.PackedPayloadSize(maxB)),
		fmt.Sprintf("gateway v2 wire ratio at batch %d: %.1f× fewer bytes per reading than the v1 per-reading frames",
			maxB, res.Metrics[fmt.Sprintf("wire_ratio_b%d", maxB)]))
	return res, nil
}
