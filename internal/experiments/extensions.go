package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/phy"
	"vab/internal/sim"
)

// Extension experiments (X-series): capabilities beyond the paper's
// evaluation that its architecture enables, implemented on the same stack.

// X1Ranging measures time-of-flight ranging accuracy across deployment
// ranges at waveform level: the reader timestamps the acquired backscatter
// burst against its own query and converts the round trip to distance. A
// retrodirective node is an ideal ranging target — it answers from any
// orientation with zero steering delay.
func X1Ranging(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return nil, err
	}
	rounds := opts.trials(12)
	if rounds > 40 {
		rounds = 40 // waveform rounds are ~ms each; cap the sweep
	}

	t := sim.NewTable("X1 (extension): Time-of-flight ranging accuracy (river, waveform level)",
		"range_m", "rounds_ok", "mean_err_m", "max_err_m")
	res := &Result{ID: "X1", Title: "Backscatter ranging", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	var worst float64
	for _, rng := range []float64{30, 60, 120, 200} {
		s, err := core.NewSystem(core.SystemConfig{
			Env: env, Design: d, Range: rng, NodeAddr: 9, Seed: opts.Seed + int64(rng),
		})
		if err != nil {
			return nil, err
		}
		s.WakeNode(3600)
		ok := 0
		var errSum, errMax float64
		for i := 0; i < rounds; i++ {
			s.WakeNode(30)
			rep, err := s.RunRangingRound()
			if err != nil || !rep.Rx.OK() {
				continue
			}
			ok++
			e := math.Abs(rep.EstimatedRange - rep.TrueRange)
			errSum += e
			if e > errMax {
				errMax = e
			}
		}
		mean := 0.0
		if ok > 0 {
			mean = errSum / float64(ok)
		}
		t.AddRowf(rng, ok, mean, errMax)
		if errMax > worst {
			worst = errMax
		}
	}
	res.Metrics["worst_error_m"] = worst
	res.Notes = append(res.Notes,
		fmt.Sprintf("worst-case ranging error %.2f m across 30-200 m (one-sample resolution ≈ 0.05 m; residual error is multipath acquisition bias plus mooring sway)", worst))
	return res, nil
}

// X2MaryThroughput compares binary and 4-ary backscatter FSK at equal chip
// (switching) rate: M-ary doubles the bit rate at the same node switching
// energy, at the cost of detection SNR and subcarrier bandwidth. Range at
// the target BER is evaluated with the same fading Monte-Carlo as the
// paper-scale sweeps.
func X2MaryThroughput(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return nil, err
	}
	b := core.NewLinkBudget(env, d)

	// Monte-Carlo BER at range r for M-ary noncoherent FSK over the
	// diversity-combined Rician fading. The RNG is re-seeded per call
	// (common random numbers): every modulation order sees the *same* fade
	// draws, so the comparison reflects M, not sampling luck.
	berAt := func(r float64, m int) float64 {
		rng := rand.New(rand.NewSource(opts.Seed + 1))
		esn0 := math.Pow(10, b.ToneSNRdB(r)/10)
		k := b.EffectiveRicianK(r)
		const draws = 20000
		var acc float64
		for i := 0; i < draws; i++ {
			acc += phy.BERNoncoherentMFSK(esn0*sim.RicianPowerGain(k, rng), m)
		}
		return acc / draws
	}
	maxRange := func(m int) float64 {
		lo, hi := 1.0, 5000.0
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			if berAt(mid, m) <= targetBER {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}

	t := sim.NewTable("X2 (extension): Binary vs M-ary backscatter FSK at equal switching rate",
		"modulation", "raw_bps", "tones_hz", "max_range_m")
	r2 := maxRange(2)
	r4 := maxRange(4)
	r8 := maxRange(8)
	t.AddRowf("2-FSK", 500, "500/1000", r2)
	t.AddRowf("4-FSK", 1000, "500..2000", r4)
	t.AddRowf("8-FSK", 1500, "500..4000", r8)

	res := &Result{ID: "X2", Title: "M-ary backscatter FSK", Kind: "table", Table: t,
		Metrics: map[string]float64{
			"range_2fsk_m": r2,
			"range_4fsk_m": r4,
			"range_8fsk_m": r8,
		}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("at equal switching rate, 4-FSK doubles throughput keeping %.0f%% of the binary range and 8-FSK triples it keeping %.0f%%: orthogonal FSK's per-bit efficiency nearly offsets the per-symbol threshold", 100*r4/r2, 100*r8/r2),
		"the detection-threshold penalty is mild — the real constraint is bandwidth: the 4 kHz top tone of 8-FSK sits far outside the transducer's ~660 Hz resonance (the E9 roll-off), which the budget tier here does not yet charge for")
	return res, nil
}
