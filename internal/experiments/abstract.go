package experiments

import (
	"fmt"

	"vab/internal/faults"
	"vab/internal/linksim"
	"vab/internal/mac"
	"vab/internal/sim"
)

// E12AbstractFleet runs the link-abstraction tier at deployment scale: a
// 100 000-node fleet (Options.Nodes overrides, up to millions) polled for
// Options.Trials cycles (default 10) through the calibrated statistical
// model, under the fault scenario from Options.Faults (default "chaos"),
// with the full recovery stack — MAC probation and SNR-triggered rate
// stepdown — plus hero-link waveform cross-checks every cycle.
//
// E12 is opt-in (not part of IDs()/RunAll), like E11: it varies with
// Options.Faults and would otherwise break the fixed `-exp all` transcript
// contract. Fixed (Seed, Trials, Nodes, Faults) make the run fully
// deterministic at any -workers count — the property the abstract-tier CI
// legs check by byte-comparing workers=1 against workers=8, at the default
// size and at a million nodes.
func E12AbstractFleet(opts Options) (*Result, error) {
	nodes := opts.Nodes
	if nodes == 0 {
		nodes = 100_000
	}
	if nodes < 0 {
		return nil, fmt.Errorf("experiments: E12 needs a positive node count, got %d", nodes)
	}
	cycles := opts.trials(10)
	spec := opts.Faults
	if spec == "" {
		spec = "chaos"
	}
	sc, err := faults.Parse(spec, opts.Seed+12001)
	if err != nil {
		return nil, err
	}
	eng, err := faults.NewEngine(sc)
	if err != nil {
		return nil, err
	}

	fleet, err := linksim.NewFleet(linksim.Config{
		Nodes: nodes,
		Policy: mac.PollPolicy{
			MaxRetries: 2, BackoffSlots: 8, DropAfter: 3,
			Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8,
		},
		Env:        "river",
		Seed:       opts.Seed + 4200,
		HeroLinks:  2,
		HeroRounds: 4,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	rc, err := mac.NewRateController([]float64{125, 250, 500}, 12)
	if err != nil {
		return nil, err
	}
	fleet.EnableRateAdaptation(rc)
	fleet.SetFaultEngine(eng)
	fleet.SetWorkers(opts.workers())

	t := sim.NewTable(
		fmt.Sprintf("E12: Abstract-tier fleet — %d nodes, %d cycles, scenario %q, hero cross-checks on", nodes, cycles, spec),
		"cycle", "delivered_pct", "retries", "probes", "live", "quar",
		"dropped", "snr_db", "chips", "severity", "hero_div")
	res := &Result{ID: "E12", Title: "Abstract-tier fleet campaign", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	var polled, delivered, heroChecks, heroDiverged int
	for c := 0; c < cycles; c++ {
		rep, err := fleet.RunCycle()
		if err != nil {
			return nil, err
		}
		polled += rep.Polled
		delivered += rep.Delivered
		heroChecks += rep.Hero.Checks
		heroDiverged += rep.Hero.Diverged
		t.AddRowf(rep.Cycle, 100*float64(rep.Delivered)/float64(rep.Polled),
			rep.Retries, rep.Probes, rep.Live, rep.Quarantined, rep.Dropped,
			rep.MeanSNRdB, rep.ChipRate, rep.Severity, rep.Hero.Diverged)
	}

	res.Metrics["delivery_ratio"] = float64(delivered) / float64(polled)
	res.Metrics["hero_checks"] = float64(heroChecks)
	res.Metrics["hero_diverged"] = float64(heroDiverged)
	divFrac := 0.0
	if heroChecks > 0 {
		divFrac = float64(heroDiverged) / float64(heroChecks)
	}
	res.Metrics["hero_divergence_frac"] = divFrac
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d nodes/cycle on the calibrated link model; delivery %.1f%% over %d cycles",
			nodes, 100*res.Metrics["delivery_ratio"], cycles),
		fmt.Sprintf("hero cross-checks: %d waveform promotions, %d outside the divergence budget (%.0f%%; budget in DESIGN.md)",
			heroChecks, heroDiverged, 100*divFrac))
	return res, nil
}
