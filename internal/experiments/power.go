package experiments

import (
	"fmt"
	"math"

	"vab/internal/core"
	"vab/internal/node"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// e8PowerBudget builds the node power table: static component draws, the
// energy cost of one complete query-response, harvestable power across
// range, and the range at which harvesting stops covering the listen state.
func e8PowerBudget(opts Options) (*Result, error) {
	budget := node.DefaultPowerBudget()
	h := node.DefaultHarvester()
	env := ocean.CharlesRiver()
	rhoC := ocean.WaterDensity * env.MeanSoundSpeed()

	t := sim.NewTable("E8 (R): Node power budget",
		"item", "value", "unit")
	t.AddRowf("sleep power", budget.Sleep*1e6, "uW")
	t.AddRowf("listen power", budget.Listen*1e6, "uW")
	t.AddRowf("decode power", budget.Decode*1e6, "uW")
	t.AddRowf("backscatter power", budget.Backscatter*1e6, "uW")

	// Per-response energy: burst duration at the default numerology.
	burstChips := float64(chipsPerFrame + 31) // payload + preamble
	burstSec := burstChips / 500
	respEnergy := budget.Backscatter*burstSec + budget.Decode*0.01
	t.AddRowf("response burst duration", burstSec*1e3, "ms")
	t.AddRowf("energy per response", respEnergy*1e6, "uJ")

	// Harvestable power at representative ranges.
	breakEven := 0.0
	for _, r := range []float64{10, 25, 50, 100, 200, 300} {
		tl := env.TransmissionLoss(core.DefaultCarrierHz, r)
		pPa := math.Pow(10, (core.DefaultSourceLevelDB-tl)/20) * 1e-6
		pw := h.HarvestablePower(pPa, rhoC)
		t.AddRowf(fmt.Sprintf("harvest @ %.0f m", r), pw*1e6, "uW")
		if breakEven == 0 && pw < budget.Listen {
			breakEven = r
		}
	}
	// Refine the harvesting break-even range by bisection.
	lo, hi := 1.0, 1000.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		tl := env.TransmissionLoss(core.DefaultCarrierHz, mid)
		pPa := math.Pow(10, (core.DefaultSourceLevelDB-tl)/20) * 1e-6
		if h.HarvestablePower(pPa, rhoC) > budget.Listen {
			lo = mid
		} else {
			hi = mid
		}
	}
	breakEven = (lo + hi) / 2
	t.AddRowf("harvest/listen break-even range", breakEven, "m")

	// Battery life at one poll per minute beyond break-even, from a coin
	// cell (CR2477: ~2.9 kJ usable).
	const coinCellJ = 2900.0
	perDay := budget.Listen*86400 + respEnergy*1440
	t.AddRowf("battery-backed life @1 poll/min", coinCellJ/perDay/365, "years")

	res := &Result{ID: "E8", Title: "Node power budget", Kind: "table", Table: t,
		Metrics: map[string]float64{
			"backscatter_uw":      budget.Backscatter * 1e6,
			"response_energy_uj":  respEnergy * 1e6,
			"harvest_breakeven_m": breakEven,
			"battery_years":       coinCellJ / perDay / 365,
		}}
	res.Notes = append(res.Notes,
		"all active states sit in the tens of µW: four-plus orders of magnitude below an acoustic modem transmitter",
		fmt.Sprintf("harvesting alone sustains the node out to ~%.0f m; beyond that a coin cell lasts ~%.1f years at one poll per minute",
			breakEven, res.Metrics["battery_years"]))
	return res, nil
}
