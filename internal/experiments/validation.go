package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// x3Ranges is the river range axis X3 validates the budget tier over.
var x3Ranges = []float64{50, 100, 150, 200, 250}

// X3WaveformValidation cross-validates the two fidelity tiers at the frame
// level: for each river range it runs full waveform query-response rounds
// (every DSP block live, fresh mooring sway per round) and compares the
// measured single-shot frame delivery against the budget tier's
// Monte-Carlo prediction. This is the experiment that earns the wide
// budget-tier sweeps (E1, E3, E6, E10) their credibility.
//
// The per-range jobs are independent — each builds its own System and
// Monte-Carlo cell from seeds derived from (opts.Seed, range) alone — so
// they run concurrently on opts.Workers goroutines with the table
// assembled in fixed range order afterwards: output is byte-identical at
// any worker count.
func X3WaveformValidation(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return nil, err
	}
	rounds := opts.trials(20)
	if rounds > 60 {
		rounds = 60 // waveform rounds are the expensive tier
	}

	t := sim.NewTable("X3 (extension): Waveform-tier validation of the budget tier (river, single-shot frame delivery)",
		"range_m", "waveform_ok_pct", "budget_ok_pct")
	res := &Result{ID: "X3", Title: "Cross-tier frame-delivery validation", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	type rangeOut struct{ wf, bud float64 }
	outs := make([]rangeOut, len(x3Ranges))
	errs := make([]error, len(x3Ranges))
	runRange := func(i int) error {
		rng := x3Ranges[i]
		// Waveform tier. The design is shared read-only across jobs (no
		// fault engine here), each System owns everything else.
		s, err := core.NewSystem(core.SystemConfig{
			Env: env, Design: d, Range: rng, NodeAddr: 3, Seed: opts.Seed + int64(rng),
		})
		if err != nil {
			return err
		}
		s.WakeNode(3600)
		ok := 0
		for r := 0; r < rounds; r++ {
			s.WakeNode(30)
			rep, err := s.RunRound()
			if err != nil {
				return err
			}
			if rep.Rx.OK() {
				ok++
			}
		}
		// Budget tier: frame-loss prediction from the fading Monte-Carlo.
		cell, err := sim.RunCell(sim.TrialConfig{
			Budget: s.PredictedBudget(), RangeM: rng, Trials: 2000,
			ChipsPerTrial: chipsPerFrame, Seed: opts.Seed + 1,
		})
		if err != nil {
			return err
		}
		outs[i] = rangeOut{wf: float64(ok) / float64(rounds), bud: 1 - cell.FrameLoss}
		return nil
	}

	workers := opts.workers()
	if workers > len(x3Ranges) {
		workers = len(x3Ranges)
	}
	if workers <= 1 {
		for i := range x3Ranges {
			if err := runRange(i); err != nil {
				return nil, err
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(x3Ranges) {
						return
					}
					errs[i] = runRange(i)
				}
			}()
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("x3 range %.0f m: %w", x3Ranges[i], err)
			}
		}
	}

	var worstGap float64
	for i, rng := range x3Ranges {
		t.AddRowf(rng, 100*outs[i].wf, 100*outs[i].bud)
		if gap := outs[i].bud - outs[i].wf; gap > worstGap {
			worstGap = gap
		}
	}
	res.Metrics["worst_delivery_gap"] = worstGap
	res.Notes = append(res.Notes,
		fmt.Sprintf("largest budget−waveform delivery gap: %.0f points", 100*worstGap),
		"the waveform tier sits below the budget tier's prediction: it carries impairments the closed forms idealize away (ISI, acquisition and timing error, SI cancellation residue); the MAC's retries close the gap operationally")
	return res, nil
}
