package experiments

import (
	"fmt"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// X3WaveformValidation cross-validates the two fidelity tiers at the frame
// level: for each river range it runs full waveform query-response rounds
// (every DSP block live, fresh mooring sway per round) and compares the
// measured single-shot frame delivery against the budget tier's
// Monte-Carlo prediction. This is the experiment that earns the wide
// budget-tier sweeps (E1, E3, E6, E10) their credibility.
func X3WaveformValidation(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return nil, err
	}
	rounds := opts.trials(20)
	if rounds > 60 {
		rounds = 60 // waveform rounds are the expensive tier
	}

	t := sim.NewTable("X3 (extension): Waveform-tier validation of the budget tier (river, single-shot frame delivery)",
		"range_m", "waveform_ok_pct", "budget_ok_pct")
	res := &Result{ID: "X3", Title: "Cross-tier frame-delivery validation", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	var worstGap float64
	for _, rng := range []float64{50, 100, 150, 200, 250} {
		// Waveform tier.
		s, err := core.NewSystem(core.SystemConfig{
			Env: env, Design: d, Range: rng, NodeAddr: 3, Seed: opts.Seed + int64(rng),
		})
		if err != nil {
			return nil, err
		}
		s.WakeNode(3600)
		ok := 0
		for i := 0; i < rounds; i++ {
			s.WakeNode(30)
			rep, err := s.RunRound()
			if err != nil {
				return nil, err
			}
			if rep.Rx.OK() {
				ok++
			}
		}
		wf := float64(ok) / float64(rounds)

		// Budget tier: frame-loss prediction from the fading Monte-Carlo.
		b := s.PredictedBudget()
		cell, err := sim.RunCell(sim.TrialConfig{
			Budget: b, RangeM: rng, Trials: 2000,
			ChipsPerTrial: chipsPerFrame, Seed: opts.Seed + 1,
		})
		if err != nil {
			return nil, err
		}
		bud := 1 - cell.FrameLoss
		t.AddRowf(rng, 100*wf, 100*bud)
		if gap := bud - wf; gap > worstGap {
			worstGap = gap
		}
	}
	res.Metrics["worst_delivery_gap"] = worstGap
	res.Notes = append(res.Notes,
		fmt.Sprintf("largest budget−waveform delivery gap: %.0f points", 100*worstGap),
		"the waveform tier sits below the budget tier's prediction: it carries impairments the closed forms idealize away (ISI, acquisition and timing error, SI cancellation residue); the MAC's retries close the gap operationally")
	return res, nil
}
