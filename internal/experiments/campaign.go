package experiments

import (
	"fmt"
	"math"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// e10Campaign reproduces the full trial campaign the abstract reports:
// "over 1,500 real-world experimental trials in a river and the ocean".
// Each campaign cell is (environment × range × orientation); each trial is
// one polled frame through the fading channel. The table aggregates BER and
// frame delivery per cell, and the totals row mirrors the abstract's
// headline counts.
func e10Campaign(opts Options) (*Result, error) {
	trialsPerCell := opts.trials(60) // 26 cells × 60 = 1,560 trials, matching the campaign scale

	type cellSpec struct {
		envName string
		env     *ocean.Environment
		readerD float64
		nodeD   float64
		ranges  []float64
	}
	specs := []cellSpec{
		{"river", ocean.CharlesRiver(), 2, 2.5, []float64{25, 50, 100, 150, 200, 250, 300}},
		{"ocean", ocean.AtlanticCoastal(), 3, 4, []float64{25, 50, 75, 100, 125, 150}},
	}
	orientations := []float64{0, 45}

	t := sim.NewTable("E10 (R): Field campaign aggregate — paper: >1,500 trials, river + ocean",
		"env", "range_m", "orient_deg", "trials", "ber", "ber_hi95", "frames_ok_pct")
	res := &Result{ID: "E10", Title: "Trial campaign", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	// The campaign cells are mutually independent, so they are enumerated
	// first (preserving the historical seed sequence exactly) and then run
	// through the sim worker pool; aggregation below walks the ordered
	// results, so the table is bit-identical at any worker count.
	type cellMeta struct {
		envName string
		deg     float64
		rangeM  float64
	}
	var cfgs []sim.TrialConfig
	var metas []cellMeta
	seed := opts.Seed
	for _, spec := range specs {
		d := newVanAtta(spec.env, core.DefaultNodeElements)
		for _, deg := range orientations {
			b := core.NewLinkBudget(spec.env, d)
			b.ReaderDepth, b.NodeDepth = spec.readerD, spec.nodeD
			b.Orientation = deg * math.Pi / 180
			for _, r := range spec.ranges {
				seed += 7
				cfgs = append(cfgs, sim.TrialConfig{
					Budget: b, RangeM: r, Trials: trialsPerCell,
					ChipsPerTrial: chipsPerFrame, Seed: seed,
				})
				metas = append(metas, cellMeta{spec.envName, deg, r})
			}
		}
	}
	cells, err := sim.RunCells(cfgs, opts.workers())
	if err != nil {
		return nil, err
	}

	totalTrials := 0
	okAt300 := math.NaN()
	for i, cell := range cells {
		m := metas[i]
		totalTrials += cell.Trials
		t.AddRowf(m.envName, m.rangeM, m.deg, cell.Trials, cell.BER, cell.BERHigh,
			100*(1-cell.FrameLoss))
		if m.envName == "river" && m.rangeM == 300 && m.deg == 0 {
			okAt300 = 1 - cell.FrameLoss
		}
	}
	t.AddRowf("TOTAL", "", "", totalTrials, "", "", "")
	res.Metrics["total_trials"] = float64(totalTrials)
	res.Metrics["river_300m_delivery"] = okAt300
	res.Notes = append(res.Notes,
		fmt.Sprintf("campaign size: %d trials (paper: >1,500)", totalTrials),
		fmt.Sprintf("river 300 m broadside frame delivery: %.0f%%", 100*okAt300))
	return res, nil
}
