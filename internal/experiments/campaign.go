package experiments

import (
	"fmt"
	"math"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// e10Campaign reproduces the full trial campaign the abstract reports:
// "over 1,500 real-world experimental trials in a river and the ocean".
// Each campaign cell is (environment × range × orientation); each trial is
// one polled frame through the fading channel. The table aggregates BER and
// frame delivery per cell, and the totals row mirrors the abstract's
// headline counts.
func e10Campaign(opts Options) (*Result, error) {
	trialsPerCell := opts.trials(60) // 26 cells × 60 = 1,560 trials, matching the campaign scale

	type cellSpec struct {
		envName string
		env     *ocean.Environment
		readerD float64
		nodeD   float64
		ranges  []float64
	}
	specs := []cellSpec{
		{"river", ocean.CharlesRiver(), 2, 2.5, []float64{25, 50, 100, 150, 200, 250, 300}},
		{"ocean", ocean.AtlanticCoastal(), 3, 4, []float64{25, 50, 75, 100, 125, 150}},
	}
	orientations := []float64{0, 45}

	t := sim.NewTable("E10 (R): Field campaign aggregate — paper: >1,500 trials, river + ocean",
		"env", "range_m", "orient_deg", "trials", "ber", "ber_hi95", "frames_ok_pct")
	res := &Result{ID: "E10", Title: "Trial campaign", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	totalTrials := 0
	okAt300 := math.NaN()
	seed := opts.Seed
	for _, spec := range specs {
		d := newVanAtta(spec.env, core.DefaultNodeElements)
		for _, deg := range orientations {
			b := core.NewLinkBudget(spec.env, d)
			b.ReaderDepth, b.NodeDepth = spec.readerD, spec.nodeD
			b.Orientation = deg * math.Pi / 180
			for _, r := range spec.ranges {
				seed += 7
				cell, err := sim.RunCell(sim.TrialConfig{
					Budget: b, RangeM: r, Trials: trialsPerCell,
					ChipsPerTrial: chipsPerFrame, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				totalTrials += cell.Trials
				t.AddRowf(spec.envName, r, deg, cell.Trials, cell.BER, cell.BERHigh,
					100*(1-cell.FrameLoss))
				if spec.envName == "river" && r == 300 && deg == 0 {
					okAt300 = 1 - cell.FrameLoss
				}
			}
		}
	}
	t.AddRowf("TOTAL", "", "", totalTrials, "", "", "")
	res.Metrics["total_trials"] = float64(totalTrials)
	res.Metrics["river_300m_delivery"] = okAt300
	res.Notes = append(res.Notes,
		fmt.Sprintf("campaign size: %d trials (paper: >1,500)", totalTrials),
		fmt.Sprintf("river 300 m broadside frame delivery: %.0f%%", 100*okAt300))
	return res, nil
}
