// Package experiments reproduces the paper's evaluation artifacts: each
// function regenerates one figure or table (the rows/series the paper
// reports), returning both the rendered table and the headline metrics the
// abstract quotes. The experiment IDs follow DESIGN.md's per-experiment
// index; EXPERIMENTS.md records the paper-claimed versus measured values.
//
// Since only the paper's abstract was available verbatim (see DESIGN.md),
// the artifact set is reconstructed (marked R): the quantitative anchors
// are the abstract's claims — >300 m round-trip range at BER 10⁻³ across
// orientations in river trials, 15× the range of the prior state of the
// art at equal throughput and power, and the first ocean validation.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vab/internal/baseline"
	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/sim"
	"vab/internal/telemetry"
)

// Result is one regenerated artifact.
type Result struct {
	ID      string
	Title   string
	Kind    string // "figure" or "table"
	Table   *sim.Table
	Notes   []string
	Metrics map[string]float64
}

// Options tunes experiment runtime cost. The zero value selects the full
// paper-scale configuration; benchmarks shrink the trial counts.
type Options struct {
	Trials  int   // Monte-Carlo frames per cell (0 → default per experiment)
	Seed    int64 // base RNG seed
	Workers int   // concurrency for Monte-Carlo cells and RunMany (0 → NumCPU, 1 → serial)

	// Nodes overrides the fleet size for experiments that poll an abstract
	// fleet (E12; 0 → the experiment's default). Per-node draws are seeded
	// by node index, so transcripts with equal Nodes agree at any Workers.
	Nodes int

	// Faults selects the fault scenario for experiments that inject faults
	// (E11): a faults.Parse spec such as "chaos" or "shrimp+shadowing:0.5".
	// Empty selects each experiment's default. Fault-free experiments
	// ignore it.
	Faults string
}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

// workers resolves the pool width. Seeded outputs are bit-identical at any
// width (per-cell seeds own their RNGs), so defaulting to every core is
// safe — the knob only trades wall-clock against machine load.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// targetBER is the paper's operating point.
const targetBER = 1e-3

// chipsPerFrame matches the default uplink frame (8-byte sensor payload
// through the FM0+Hamming codec).
const chipsPerFrame = 392

// newVanAtta builds the headline 16-element design for an environment,
// panicking only on programming errors (element count and carrier are
// compile-time constants here).
func newVanAtta(env *ocean.Environment, n int) core.Design {
	d, err := core.NewVanAttaDesign(n, env, core.DefaultCarrierHz)
	if err != nil {
		panic(fmt.Sprintf("experiments: van atta design: %v", err))
	}
	return d
}

func newSpecular(env *ocean.Environment, n int) core.Design {
	d, err := core.NewSpecularDesign(n, env, core.DefaultCarrierHz)
	if err != nil {
		panic(fmt.Sprintf("experiments: specular design: %v", err))
	}
	return d
}

// pabBudget returns the prior-art budget in an environment: single element,
// carrier-band signaling penalty.
func pabBudget(env *ocean.Environment) *core.LinkBudget {
	b := core.NewLinkBudget(env, baseline.New())
	b.SIPenaltyDB = core.CarrierBandSIPenaltyDB
	return b
}

// Registry lists every experiment by ID.
type runner func(Options) (*Result, error)

var registry = map[string]runner{
	"E1":  E1RangeRiver,
	"E2":  E2SNRComparison,
	"E3":  E3HeadToHead,
	"E4":  E4Orientation,
	"E5":  E5ElementScaling,
	"E6":  E6Ocean,
	"E7":  E7Throughput,
	"E8":  E8PowerBudget,
	"E9":  E9Matching,
	"E10": E10Campaign,
	"X1":  X1Ranging,
	"X2":  X2MaryThroughput,
	"X3":  X3WaveformValidation,
	"X4":  X4Sensitivity,
	"X5":  X5Environment,
}

// optIn experiments run only when named explicitly: they are deliberately
// excluded from IDs()/RunAll so that seeded `-exp all` transcripts stay
// byte-identical as opt-in experiments are added. E11 additionally varies
// with Options.Faults, which would break the fixed-flag reproducibility
// contract of the default set.
var optIn = map[string]runner{
	"E11": E11Chaos,
	"E12": E12AbstractFleet,
	"E13": E13PackedPayloads,
	"E14": E14NetChaos,
}

// describe holds one-line descriptions for the whole inventory (default
// and opt-in), so `vabsim -exp list` can print it without running anything.
var describe = map[string]string{
	"E1":  "range sweep in the river environment: BER and SNR vs distance",
	"E2":  "SNR comparison: Van Atta vs specular vs prior-art budgets",
	"E3":  "head-to-head range table at the paper's operating BER",
	"E4":  "orientation sweep: retrodirective gain across node rotation",
	"E5":  "element scaling: range vs Van Atta array size",
	"E6":  "ocean validation: coastal Atlantic environment",
	"E7":  "throughput vs range at fixed reliability",
	"E8":  "power budget: harvested vs consumed per uplink frame",
	"E9":  "matching-network sensitivity of the scattered field",
	"E10": "full campaign: the multi-cell Monte-Carlo summary table",
	"X1":  "extension: round-trip acoustic ranging accuracy",
	"X2":  "extension: M-ary orthogonal signaling throughput",
	"X3":  "extension: waveform pipeline vs analytic budget cross-validation",
	"X4":  "extension: sensitivity of headline claims to environment knobs",
	"X5":  "extension: environment-parameter sweeps (sound speed, spreading)",
	"E11": "opt-in: chaos campaign — delivery vs fault intensity, recovery off/on",
	"E12": "opt-in: abstract-tier 100k-node fleet on the calibrated link model",
	"E13": "opt-in: packed payload batching — readings per frame and wire bytes per reading",
	"E14": "opt-in: network chaos — gateway delivery vs chaos intensity, session resume off/on",
}

// Describe returns "ID  description" inventory lines: the default set in
// ID order, then the opt-in experiments.
func Describe() []string {
	ids := IDs()
	opt := make([]string, 0, len(optIn))
	for id := range optIn {
		opt = append(opt, id)
	}
	sort.Strings(opt)
	ids = append(ids, opt...)
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, fmt.Sprintf("%-4s %s", id, describe[id]))
	}
	return out
}

// IDs returns the registered experiment IDs in order: the paper's E-series
// numerically, then the X-series extensions.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	rank := func(id string) (byte, int) {
		var n int
		fmt.Sscanf(id[1:], "%d", &n)
		return id[0], n
	}
	sort.Slice(ids, func(i, j int) bool {
		pi, ni := rank(ids[i])
		pj, nj := rank(ids[j])
		if pi != pj {
			return pi < pj
		}
		return ni < nj
	})
	return ids
}

// metReg holds the registry passed to Instrument; nil (the default) makes
// per-experiment wall-clock recording a no-op.
var metReg *telemetry.Registry

// Instrument enables per-experiment wall-clock histograms
// (vab_experiment_seconds{id="E1"}…) against reg. Call once at startup.
func Instrument(reg *telemetry.Registry) { metReg = reg }

// Run executes one experiment by ID (including opt-in experiments that
// RunAll skips).
func Run(id string, opts Options) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		r, ok = optIn[id]
	}
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v plus opt-in E11, E12, E13, E14)", id, IDs())
	}
	var sp telemetry.Span
	if metReg != nil {
		sp = telemetry.StartSpan(metReg.Histogram(
			telemetry.Label("vab_experiment_seconds", "id", id),
			"Wall time of one experiment run.", nil))
	}
	res, err := r(opts)
	if err == nil {
		sp.End()
	}
	return res, err
}

// RunAll executes every experiment, returning results in ID order. The
// experiments are mutually independent (each derives its RNGs from
// opts.Seed alone), so they run concurrently on opts.Workers goroutines;
// results and error selection are deterministic regardless of width.
func RunAll(opts Options) ([]*Result, error) {
	return RunMany(IDs(), opts)
}

// RunMany executes the named experiments concurrently and returns their
// results in the order the IDs were given. Experiments never share mutable
// state — every environment preset, design and RNG is built per run — so
// interleaving them is safe; per-cell seeding keeps each result
// bit-identical to a serial run. On failure the error of the
// earliest-listed failing experiment is returned, matching what a serial
// loop would report.
func RunMany(ids []string, opts Options) ([]*Result, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	workers := opts.workers()
	if workers > len(ids) {
		workers = len(ids)
	}
	out := make([]*Result, len(ids))
	errs := make([]error, len(ids))
	if workers == 1 {
		for i, id := range ids {
			res, err := Run(id, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", id, err)
			}
			out[i] = res
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ids) {
					return
				}
				out[i], errs[i] = Run(ids[i], opts)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", ids[i], err)
		}
	}
	return out, nil
}

// E1RangeRiver regenerates the headline river figure (R): BER versus range
// for the 16-element VAB node at several orientations, Monte-Carlo over the
// fading distribution. The paper's claim: BER ≤ 10⁻³ beyond 300 m round
// trip, across orientations.
func E1RangeRiver(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	b := core.NewLinkBudget(env, newVanAtta(env, core.DefaultNodeElements))
	ranges := []float64{25, 50, 100, 150, 200, 250, 300, 350, 400}
	orientations := []float64{0, 30, 60}
	trials := opts.trials(1000)

	t := sim.NewTable("E1 (R): River BER vs range, VAB-16 — paper: BER ≤ 1e-3 at 300 m across orientations",
		"range_m", "orient_deg", "tone_snr_db", "ber_mc", "ber_model", "frame_loss")
	res := &Result{ID: "E1", Title: "River BER vs range", Kind: "figure", Table: t,
		Metrics: map[string]float64{}}

	worst300 := 0.0
	for _, deg := range orientations {
		bb := *b
		bb.Orientation = deg * math.Pi / 180
		cells, err := sim.RangeSweep(&bb, ranges, trials, chipsPerFrame, opts.Seed+int64(deg), opts.workers())
		if err != nil {
			return nil, err
		}
		for i, c := range cells {
			t.AddRowf(c.RangeM, deg, c.MeanSNRdB, c.BER, bb.BER(ranges[i]), c.FrameLoss)
			if c.RangeM == 300 && c.BER > worst300 {
				worst300 = c.BER
			}
		}
	}
	res.Metrics["worst_ber_at_300m"] = worst300
	res.Metrics["range_at_target"] = b.MaxRange(targetBER, 5000)
	res.Notes = append(res.Notes,
		fmt.Sprintf("model max range at BER 1e-3: %.0f m (paper: >300 m)", res.Metrics["range_at_target"]))
	return res, nil
}

// E2SNRComparison regenerates the SNR-vs-range comparison figure (R):
// analytic tone SNR for VAB-16, the same-aperture specular array, and the
// single-element prior art. Shows the ~N² retrodirective gain directly.
func E2SNRComparison(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	va := core.NewLinkBudget(env, newVanAtta(env, core.DefaultNodeElements))
	sp := core.NewLinkBudget(env, newSpecular(env, core.DefaultNodeElements))
	// Off-broadside at a sidelobe peak (sin 20° ≈ 5.5/16): exact nulls
	// (sinθ = m/16) would render as -∞ dB and overstate the contrast.
	sp.Orientation = 20 * math.Pi / 180
	pab := pabBudget(env)

	t := sim.NewTable("E2 (R): Tone SNR vs range (river) — VAB vs specular(20°) vs single-element",
		"range_m", "vab_snr_db", "specular_snr_db", "pab_snr_db")
	res := &Result{ID: "E2", Title: "SNR vs range comparison", Kind: "figure", Table: t,
		Metrics: map[string]float64{}}
	for _, r := range []float64{10, 20, 50, 100, 200, 300, 400} {
		t.AddRowf(r, va.ToneSNRdB(r), sp.ToneSNRdB(r), pab.ToneSNRdB(r))
	}
	res.Metrics["vab_minus_pab_db"] = va.ToneSNRdB(100) - pab.ToneSNRdB(100)
	res.Notes = append(res.Notes,
		fmt.Sprintf("VAB leads the single-element baseline by %.1f dB at every range", res.Metrics["vab_minus_pab_db"]))
	return res, nil
}

// E3HeadToHead regenerates the head-to-head comparison table (R): maximum
// range at BER 10⁻³ and equal throughput/power for VAB versus the prior
// state of the art, with the gain decomposition. The paper's claim: 15×.
func E3HeadToHead(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	va := core.NewLinkBudget(env, newVanAtta(env, core.DefaultNodeElements))
	pab := pabBudget(env)

	vaR := va.MaxRange(targetBER, 5000)
	pabR := pab.MaxRange(targetBER, 5000)
	ratio := vaR / pabR

	arrayGain := core.EffectiveGainDB(va.Design, core.DefaultCarrierHz, 0) -
		core.EffectiveGainDB(pab.Design, core.DefaultCarrierHz, 0)
	depthPenalty := baseline.New().DepthPenaltyDB(core.DefaultCarrierHz)

	t := sim.NewTable("E3 (R): Head-to-head vs prior art at equal throughput & power — paper: 15× range",
		"system", "elements", "mod_depth", "node_gain_db", "si_penalty_db", "max_range_m")
	t.AddRowf("vab", va.Design.Elements(),
		va.Design.ModulationDepth(core.DefaultCarrierHz),
		core.EffectiveGainDB(va.Design, core.DefaultCarrierHz, 0),
		va.SIPenaltyDB, vaR)
	t.AddRowf("pab-prior-art", pab.Design.Elements(),
		pab.Design.ModulationDepth(core.DefaultCarrierHz),
		core.EffectiveGainDB(pab.Design, core.DefaultCarrierHz, 0),
		pab.SIPenaltyDB, pabR)

	res := &Result{ID: "E3", Title: "Head-to-head range comparison", Kind: "table", Table: t,
		Metrics: map[string]float64{
			"vab_range_m":       vaR,
			"pab_range_m":       pabR,
			"range_ratio":       ratio,
			"node_gain_gap_db":  arrayGain,
			"depth_penalty_db":  depthPenalty,
			"si_penalty_db":     core.CarrierBandSIPenaltyDB,
			"diversity_gain_db": core.DiversityGainDB,
		}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("measured ratio %.1f× (paper: 15×)", ratio),
		fmt.Sprintf("decomposition: %.1f dB node gain gap (array %.1f dB + matched depth %.1f dB) + %.1f dB subcarrier-vs-carrier SI + %.1f dB diversity",
			arrayGain, arrayGain-depthPenalty, depthPenalty, core.CarrierBandSIPenaltyDB, core.DiversityGainDB))
	return res, nil
}

// E4Orientation regenerates the orientation figure (R): monostatic response
// and achievable range versus rotation for the Van Atta array and the
// specular baseline — the physics behind "across orientations".
func E4Orientation(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	vaDesign := newVanAtta(env, core.DefaultNodeElements)
	spDesign := newSpecular(env, core.DefaultNodeElements)
	va := core.NewLinkBudget(env, vaDesign)
	sp := core.NewLinkBudget(env, spDesign)

	t := sim.NewTable("E4 (R): Orientation response — retrodirective vs specular array",
		"theta_deg", "vab_gain_db", "spec_gain_db", "vab_range_m", "spec_range_m")
	res := &Result{ID: "E4", Title: "Orientation response", Kind: "figure", Table: t,
		Metrics: map[string]float64{}}

	minVA, maxVA := math.Inf(1), math.Inf(-1)
	for deg := -75.0; deg <= 75; deg += 15 {
		th := deg * math.Pi / 180
		va.Orientation, sp.Orientation = th, th
		gVA := core.EffectiveGainDB(vaDesign, core.DefaultCarrierHz, th)
		gSP := core.EffectiveGainDB(spDesign, core.DefaultCarrierHz, th)
		rVA := va.MaxRange(targetBER, 5000)
		rSP := sp.MaxRange(targetBER, 5000)
		t.AddRowf(deg, gVA, gSP, rVA, rSP)
		if rVA < minVA {
			minVA = rVA
		}
		if rVA > maxVA {
			maxVA = rVA
		}
	}
	res.Metrics["vab_min_range_m"] = minVA
	res.Metrics["vab_range_spread"] = (maxVA - minVA) / maxVA
	res.Notes = append(res.Notes,
		fmt.Sprintf("VAB worst-case range across ±75°: %.0f m (spread %.1f%%)", minVA, 100*res.Metrics["vab_range_spread"]))
	return res, nil
}

// E5ElementScaling regenerates the scalability figure (R): conversion gain
// and achievable range versus array size.
func E5ElementScaling(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	t := sim.NewTable("E5 (R): Scaling with array size (river, BER 1e-3)",
		"elements", "node_gain_db", "max_range_m", "range_vs_single")
	res := &Result{ID: "E5", Title: "Element scaling", Kind: "figure", Table: t,
		Metrics: map[string]float64{}}

	var single float64
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		b := core.NewLinkBudget(env, newVanAtta(env, n))
		g := core.EffectiveGainDB(b.Design, core.DefaultCarrierHz, 0.3)
		r := b.MaxRange(targetBER, 10000)
		if n == 1 {
			single = r
		}
		t.AddRowf(n, g, r, r/single)
		res.Metrics[fmt.Sprintf("range_n%d", n)] = r
	}
	res.Metrics["range_gain_16_vs_1"] = res.Metrics["range_n16"] / res.Metrics["range_n1"]
	return res, nil
}

// E6Ocean regenerates the ocean-validation figure (R): BER versus range in
// the Atlantic coastal preset alongside the river curve. The paper's claim:
// first experimental validation of underwater backscatter in the ocean.
func E6Ocean(opts Options) (*Result, error) {
	river := ocean.CharlesRiver()
	sea := ocean.AtlanticCoastal()
	bRiver := core.NewLinkBudget(river, newVanAtta(river, core.DefaultNodeElements))
	bSea := core.NewLinkBudget(sea, newVanAtta(sea, core.DefaultNodeElements))
	// Near-surface mooring as in the coastal deployment.
	bSea.ReaderDepth, bSea.NodeDepth = 3, 4
	trials := opts.trials(1000)

	ranges := []float64{25, 50, 75, 100, 150, 200, 250, 300}
	riverCells, err := sim.RangeSweep(bRiver, ranges, trials, chipsPerFrame, opts.Seed+100, opts.workers())
	if err != nil {
		return nil, err
	}
	seaCells, err := sim.RangeSweep(bSea, ranges, trials, chipsPerFrame, opts.Seed+200, opts.workers())
	if err != nil {
		return nil, err
	}

	t := sim.NewTable("E6 (R): Ocean validation — BER vs range, river vs coastal ocean",
		"range_m", "river_ber", "ocean_ber", "river_snr_db", "ocean_snr_db")
	for i := range ranges {
		t.AddRowf(ranges[i], riverCells[i].BER, seaCells[i].BER,
			riverCells[i].MeanSNRdB, seaCells[i].MeanSNRdB)
	}
	res := &Result{ID: "E6", Title: "Ocean validation", Kind: "figure", Table: t,
		Metrics: map[string]float64{
			"ocean_range_at_target": bSea.MaxRange(targetBER, 5000),
			"river_range_at_target": bRiver.MaxRange(targetBER, 5000),
		}}
	res.Notes = append(res.Notes,
		fmt.Sprintf("ocean max range %.0f m vs river %.0f m: ocean noise and absorption cost range but the system operates (the paper's first-ocean-validation claim)",
			res.Metrics["ocean_range_at_target"], res.Metrics["river_range_at_target"]))
	return res, nil
}

// E7Throughput regenerates the throughput-vs-range figure (R): achievable
// range at BER 10⁻³ for different chip rates, plus the effective goodput
// after line coding and FEC. Lower rates narrow the detection bandwidth,
// buying range — the axis along which "same throughput" comparisons are
// made.
func E7Throughput(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	d := newVanAtta(env, core.DefaultNodeElements)
	t := sim.NewTable("E7 (R): Throughput vs range (river, BER 1e-3)",
		"chip_rate_cps", "goodput_bps", "noise_bw_db", "max_range_m")
	res := &Result{ID: "E7", Title: "Throughput vs range", Kind: "figure", Table: t,
		Metrics: map[string]float64{}}

	for _, rate := range []float64{125, 250, 500, 1000, 2000} {
		b := core.NewLinkBudget(env, d)
		b.ChipRate = rate
		r := b.MaxRange(targetBER, 20000)
		// FM0 halves the chip rate into bits; Hamming(7,4) leaves 4/7.
		goodput := rate / 2 * 4 / 7
		t.AddRowf(rate, goodput, 10*math.Log10(rate), r)
		res.Metrics[fmt.Sprintf("range_at_%.0fcps", rate)] = r
	}
	res.Notes = append(res.Notes,
		"halving the chip rate buys ~1 dB of detection SNR (3 dB noise bandwidth − 2·TL slope), extending range")
	return res, nil
}

// E8PowerBudget regenerates the node power table (R): component draws,
// per-response energy, harvestable power versus range, and the harvesting
// break-even.
func E8PowerBudget(opts Options) (*Result, error) {
	return e8PowerBudget(opts)
}

// E9Matching regenerates the electro-mechanical co-design figure (R):
// reflection-coefficient contrast versus frequency with and without the
// matching network, and the match bandwidth.
func E9Matching(opts Options) (*Result, error) {
	return e9Matching(opts)
}

// E10Campaign regenerates the trial-campaign summary (R): the >1,500
// experimental trials across environments, ranges and orientations that
// the abstract reports, aggregated per cell.
func E10Campaign(opts Options) (*Result, error) {
	return e10Campaign(opts)
}
