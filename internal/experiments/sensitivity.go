package experiments

import (
	"fmt"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// X4Sensitivity probes how the reproduction's headline numbers move when
// the calibrated quantities are perturbed — the robustness analysis a
// referee would ask for. The two calibration constants cannot be varied
// directly (they are deliberately compile-time constants), but each acts on
// the budget through a dB term with an exact equivalent knob:
//
//   - StructuralLossDB trades 1:1 against source level (both sit as flat dB
//     in the sonar equation), so ±Δ of structural loss ≡ ∓Δ of SL;
//   - CarrierBandSIPenaltyDB is a budget field on the baseline already.
//
// The claim to protect is the *ratio* (15×), which the abstract quotes; the
// absolute ranges move along the ~31 dB/decade round-trip slope.
func X4Sensitivity(opts Options) (*Result, error) {
	env := ocean.CharlesRiver()
	va := newVanAtta(env, core.DefaultNodeElements)

	t := sim.NewTable("X4 (extension): Sensitivity of the headline claims to the calibrated constants",
		"perturbation", "vab_range_m", "pab_range_m", "ratio")
	res := &Result{ID: "X4", Title: "Calibration sensitivity", Kind: "table", Table: t,
		Metrics: map[string]float64{}}

	eval := func(label string, dStruct, dSI float64) (float64, float64, float64) {
		bv := core.NewLinkBudget(env, va)
		bv.SourceLevelDB -= dStruct // structural-loss equivalent
		bp := pabBudget(env)
		bp.SourceLevelDB -= dStruct
		bp.SIPenaltyDB = core.CarrierBandSIPenaltyDB + dSI
		rv := bv.MaxRange(targetBER, 10000)
		rp := bp.MaxRange(targetBER, 10000)
		t.AddRowf(label, rv, rp, rv/rp)
		return rv, rp, rv / rp
	}

	_, _, base := eval("nominal", 0, 0)
	res.Metrics["nominal_ratio"] = base
	minR, maxR := base, base
	for _, d := range []float64{-3, +3} {
		_, _, r := eval(fmt.Sprintf("structural loss %+0.f dB", d), d, 0)
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	for _, d := range []float64{-3, +3} {
		_, _, r := eval(fmt.Sprintf("SI penalty %+0.f dB", d), 0, d)
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	res.Metrics["ratio_min"] = minR
	res.Metrics["ratio_max"] = maxR
	res.Notes = append(res.Notes,
		fmt.Sprintf("the 15× claim holds between %.1f× and %.1f× under ±3 dB perturbations of either calibrated constant", minR, maxR),
		"structural loss moves both systems together (the ratio barely moves); the SI penalty moves only the baseline, so it is the constant the ratio actually leans on")
	return res, nil
}
