package piezo

import (
	"fmt"
	"math"
	"math/cmplx"
)

// MatchingNetwork is a lossless L-section (series reactance plus shunt
// susceptance) that transforms the transducer's complex impedance into a
// real target resistance at the design frequency. The paper co-designs such
// networks so that interconnected Van Atta pairs transfer energy instead of
// detuning each other.
type MatchingNetwork struct {
	DesignHz float64
	TargetR  float64

	// Element values. Exactly one of each L/C pair is nonzero (or both zero
	// when the element is absent).
	seriesL float64 // H
	seriesC float64 // F
	shuntL  float64 // H
	shuntC  float64 // F

	shuntAtLoad bool // topology: shunt element adjacent to the load side
}

// DesignLSection synthesizes an L-section matching the complex impedance
// zLoad to the real resistance r0 at frequency fHz, using the standard
// analytic solution:
//
//   - R_L > r0: shunt susceptance across the load, series reactance toward
//     the source;
//   - R_L < r0: series reactance at the load, shunt susceptance at the
//     source;
//   - R_L = r0: a single series element cancels the load reactance.
//
// A load with non-positive resistance cannot be matched by a lossless
// network and returns an error.
func DesignLSection(zLoad complex128, r0, fHz float64) (*MatchingNetwork, error) {
	rl, xl := real(zLoad), imag(zLoad)
	if rl <= 0 {
		return nil, fmt.Errorf("piezo: cannot match non-dissipative impedance %v", zLoad)
	}
	if r0 <= 0 {
		return nil, fmt.Errorf("piezo: target resistance %.3g must be positive", r0)
	}
	if fHz <= 0 {
		return nil, fmt.Errorf("piezo: design frequency %.3g must be positive", fHz)
	}
	w := 2 * math.Pi * fHz
	m := &MatchingNetwork{DesignHz: fHz, TargetR: r0}

	setSeries := func(x float64) {
		if x > 0 {
			m.seriesL = x / w
		} else if x < 0 {
			m.seriesC = -1 / (w * x)
		}
	}
	setShunt := func(b float64) {
		if b > 0 {
			m.shuntC = b / w
		} else if b < 0 {
			m.shuntL = -1 / (w * b)
		}
	}

	switch {
	case math.Abs(rl-r0) < 1e-12*r0:
		setSeries(-xl)
	case rl > r0:
		// Shunt at the load: after adding susceptance, the input
		// resistance of the parallel combination equals r0.
		m.shuntAtLoad = true
		g := rl / (rl*rl + xl*xl)
		bl := -xl / (rl*rl + xl*xl)
		btot := math.Sqrt(g/r0 - g*g) // solvable since r0 < 1/g always here
		bAdd := btot - bl
		setShunt(bAdd)
		// Residual series reactance of the combination, cancelled by the
		// series element.
		x1 := -btot / (g*g + btot*btot)
		setSeries(-x1)
	default: // rl < r0
		// Series at the load: choose total reactance so the parallel
		// equivalent resistance equals r0.
		xt := math.Sqrt(rl * (r0 - rl))
		setSeries(xt - xl)
		bAdd := xt / (rl*rl + xt*xt)
		setShunt(bAdd)
	}
	return m, nil
}

// seriesX returns the series-element reactance at fHz (0 when absent).
func (m *MatchingNetwork) seriesX(w float64) float64 {
	switch {
	case m.seriesL > 0:
		return w * m.seriesL
	case m.seriesC > 0:
		return -1 / (w * m.seriesC)
	}
	return 0
}

// shuntB returns the shunt-element susceptance at fHz (0 when absent).
func (m *MatchingNetwork) shuntB(w float64) float64 {
	switch {
	case m.shuntC > 0:
		return w * m.shuntC
	case m.shuntL > 0:
		return -1 / (w * m.shuntL)
	}
	return 0
}

// InputImpedance returns the impedance looking into the network at fHz when
// terminated by zLoad. Because the synthesized inductor/capacitor values are
// fixed components, the network detunes naturally away from the design
// frequency — the behaviour the matching-bandwidth experiment measures.
func (m *MatchingNetwork) InputImpedance(fHz float64, zLoad complex128) complex128 {
	w := 2 * math.Pi * fHz
	xs := m.seriesX(w)
	b := m.shuntB(w)
	if m.shuntAtLoad {
		z := zLoad
		if b != 0 {
			z = 1 / (1/z + complex(0, b))
		}
		return z + complex(0, xs)
	}
	z := zLoad + complex(0, xs)
	if b != 0 {
		z = 1 / (1/z + complex(0, b))
	}
	return z
}

// MatchQuality returns |Γ| at the network input against the target
// resistance at fHz when terminated in zLoad: 0 is a perfect match, 1 total
// reflection.
func (m *MatchingNetwork) MatchQuality(fHz float64, zLoad complex128) float64 {
	zin := m.InputImpedance(fHz, zLoad)
	g := (zin - complex(m.TargetR, 0)) / (zin + complex(m.TargetR, 0))
	return cmplx.Abs(g)
}
