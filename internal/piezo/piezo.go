// Package piezo models the electro-mechanical behaviour of the piezoelectric
// transducers VAB is built from: their Butterworth–Van Dyke (BVD) equivalent
// circuit, electro-acoustic transduction, the load-dependent reflection
// coefficient that backscatter modulation relies on, and the matching
// networks the paper co-designs to keep transducer pairs from loading each
// other down.
//
// Underwater backscatter works by switching the electrical load on a
// transducer's terminals: the load sets how much of the incident acoustic
// energy (converted to the electrical domain through the piezoelectric
// coupling) is re-radiated versus absorbed. The achievable modulation depth
// is governed by the contrast |Γ₁ − Γ₂| between the reflection coefficients
// of the two load states — exactly the quantity this package computes from
// circuit values.
package piezo

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Transducer is a piezoelectric element described by its BVD equivalent
// circuit: a static (clamped) capacitance C0 in parallel with a motional
// series RLC branch (R1, L1, C1) representing the mechanical resonance.
type Transducer struct {
	C0 float64 // clamped capacitance, F
	R1 float64 // motional resistance, Ω (mechanical + radiation loss)
	L1 float64 // motional inductance, H
	C1 float64 // motional capacitance, F

	// Electro-acoustic calibration at resonance.
	RxSensitivity float64 // open-circuit receive sensitivity, V/Pa
	TxResponse    float64 // transmit response, Pa·m/V (pressure at 1 m per volt)
}

// Params configures NewTransducer with designer-level quantities instead of
// raw circuit values.
type Params struct {
	ResonanceHz float64 // series (motional) resonance f_s
	Qm          float64 // mechanical quality factor
	C0          float64 // clamped capacitance, F
	CouplingK2  float64 // effective electromechanical coupling k_eff² in (0, 1)

	RxSensitivity float64 // V/Pa at resonance
	TxResponse    float64 // Pa·m/V at resonance
}

// DefaultParams returns parameters representative of the cylindrical
// transducers used in underwater backscatter prototypes: ~18.5 kHz
// resonance, moderate mechanical Q, k31-mode coupling around 0.3 (k² ≈ 0.09
// would be raw ceramic; potted cylinders in water achieve effective k_eff²
// near 0.25–0.35 with the radiation load folded in).
func DefaultParams() Params {
	return Params{
		ResonanceHz: 18500,
		Qm:          28,
		C0:          9e-9,
		CouplingK2:  0.30,
		// Representative of small cylinders: −193 dB re V/µPa receive,
		// 130 dB re µPa·m/V transmit.
		RxSensitivity: 2.2e-4, // V/Pa
		TxResponse:    3.2,    // Pa·m/V
	}
}

// NewTransducer constructs the BVD circuit realizing the given parameters.
// The motional branch values follow from
//
//	C1 = C0·k²/(1−k²),  L1 = 1/(ω_s²·C1),  R1 = ω_s·L1/Q_m.
func NewTransducer(p Params) (*Transducer, error) {
	switch {
	case p.ResonanceHz <= 0:
		return nil, fmt.Errorf("piezo: resonance %.3g Hz must be positive", p.ResonanceHz)
	case p.Qm <= 0:
		return nil, fmt.Errorf("piezo: Qm %.3g must be positive", p.Qm)
	case p.C0 <= 0:
		return nil, fmt.Errorf("piezo: C0 %.3g F must be positive", p.C0)
	case p.CouplingK2 <= 0 || p.CouplingK2 >= 1:
		return nil, fmt.Errorf("piezo: coupling k² %.3g outside (0,1)", p.CouplingK2)
	}
	ws := 2 * math.Pi * p.ResonanceHz
	c1 := p.C0 * p.CouplingK2 / (1 - p.CouplingK2)
	l1 := 1 / (ws * ws * c1)
	r1 := ws * l1 / p.Qm
	return &Transducer{
		C0:            p.C0,
		R1:            r1,
		L1:            l1,
		C1:            c1,
		RxSensitivity: p.RxSensitivity,
		TxResponse:    p.TxResponse,
	}, nil
}

// MustDefault returns the default transducer, panicking on the (impossible)
// error path. Convenience for tests and examples.
func MustDefault() *Transducer {
	t, err := NewTransducer(DefaultParams())
	if err != nil {
		panic(err)
	}
	return t
}

// Impedance returns the complex electrical impedance of the transducer at
// frequency fHz: the motional RLC branch in parallel with C0.
func (t *Transducer) Impedance(fHz float64) complex128 {
	w := 2 * math.Pi * fHz
	zm := complex(t.R1, w*t.L1-1/(w*t.C1))
	z0 := complex(0, -1/(w*t.C0))
	return zm * z0 / (zm + z0)
}

// SeriesResonance returns the motional (series) resonance frequency f_s in
// Hz, where the transducer's impedance magnitude dips: this is the operating
// point for maximum acoustic coupling.
func (t *Transducer) SeriesResonance() float64 {
	return 1 / (2 * math.Pi * math.Sqrt(t.L1*t.C1))
}

// ParallelResonance returns the anti-resonance frequency f_p in Hz, where
// the impedance magnitude peaks:
//
//	f_p = f_s·√(1 + C1/C0)
func (t *Transducer) ParallelResonance() float64 {
	return t.SeriesResonance() * math.Sqrt(1+t.C1/t.C0)
}

// Qm returns the mechanical quality factor ω_s·L1/R1.
func (t *Transducer) Qm() float64 {
	return 2 * math.Pi * t.SeriesResonance() * t.L1 / t.R1
}

// CouplingK2 returns the effective electromechanical coupling coefficient
// k_eff² = C1/(C0+C1), the fraction of stored energy exchanged between the
// electrical and mechanical domains.
func (t *Transducer) CouplingK2() float64 {
	return t.C1 / (t.C0 + t.C1)
}

// Bandwidth returns the -3 dB fractional bandwidth of the motional branch,
// f_s/Q_m in Hz. Backscatter subcarriers must fit inside it.
func (t *Transducer) Bandwidth() float64 {
	return t.SeriesResonance() / t.Qm()
}

// Response returns the normalized second-order band-pass transduction
// response at fHz (1 at resonance), applied to both receive and transmit
// paths. It captures how quickly the piezo rolls off away from resonance —
// the electro-mechanical constraint that shapes the choice of subcarrier
// frequencies.
func (t *Transducer) Response(fHz float64) complex128 {
	fs := t.SeriesResonance()
	q := t.Qm()
	u := fHz / fs
	den := complex(1-u*u, u/q)
	num := complex(0, u/q)
	return num / den
}

// ReceiveVoltage returns the open-circuit voltage phasor produced by an
// incident pressure of amplitude pPa at frequency fHz.
func (t *Transducer) ReceiveVoltage(pPa, fHz float64) complex128 {
	return complex(pPa*t.RxSensitivity, 0) * t.Response(fHz)
}

// TransmitPressure returns the radiated pressure amplitude at 1 m (Pa)
// driven by a voltage of amplitude v at frequency fHz.
func (t *Transducer) TransmitPressure(v complex128, fHz float64) complex128 {
	return v * complex(t.TxResponse, 0) * t.Response(fHz)
}

// ReflectionCoefficient returns the power-wave reflection coefficient seen
// by the acoustic wave when the transducer is terminated in zLoad at fHz:
//
//	Γ = (Z_L − Z_T*)/(Z_L + Z_T)
//
// Γ = 0 is the conjugate-matched (fully absorbing) state, |Γ| → 1 for a
// short or open. This is the knob backscatter modulation actuates.
func (t *Transducer) ReflectionCoefficient(fHz float64, zLoad complex128) complex128 {
	zt := t.Impedance(fHz)
	den := zLoad + zt
	if den == 0 {
		return complex(1, 0)
	}
	return (zLoad - cmplx.Conj(zt)) / den
}

// ModulationDepth returns |Γ(z1) − Γ(z2)|/2 at fHz, the amplitude of the
// backscatter sidebands relative to a perfect reflector when the load
// toggles between z1 and z2. The factor 1/2 is the fundamental-component
// coefficient of an ideal square-wave toggle.
func (t *Transducer) ModulationDepth(fHz float64, z1, z2 complex128) float64 {
	g1 := t.ReflectionCoefficient(fHz, z1)
	g2 := t.ReflectionCoefficient(fHz, z2)
	return cmplx.Abs(g1-g2) / 2
}

// Common load states for backscatter switching.
var (
	// ShortLoad approximates a closed analog switch (small on-resistance).
	ShortLoad = complex(2.0, 0)
	// OpenLoad approximates an open switch (large off-impedance).
	OpenLoad = complex(1e9, 0)
)

// MatchedLoad returns the conjugate-match impedance at fHz, the fully
// absorbing termination used for the non-reflective state and for energy
// harvesting.
func (t *Transducer) MatchedLoad(fHz float64) complex128 {
	return cmplx.Conj(t.Impedance(fHz))
}
