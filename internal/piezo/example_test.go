package piezo_test

import (
	"fmt"
	"math/cmplx"

	"vab/internal/piezo"
)

// Example shows the backscatter modulation primitive: toggling the
// transducer's electrical load between a short and its conjugate match
// swings the reflection coefficient, and that contrast is the transmitted
// signal.
func Example() {
	tr := piezo.MustDefault()
	fc := tr.SeriesResonance()

	gOn := tr.ReflectionCoefficient(fc, piezo.ShortLoad)
	gOff := tr.ReflectionCoefficient(fc, tr.MatchedLoad(fc))
	fmt.Printf("resonance: %.0f Hz\n", fc)
	fmt.Printf("|Γ| short: %.2f, matched: %.2f\n", cmplx.Abs(gOn), cmplx.Abs(gOff))
	fmt.Printf("modulation depth: %.2f\n", tr.ModulationDepth(fc, piezo.ShortLoad, tr.MatchedLoad(fc)))
	// Output:
	// resonance: 18500 Hz
	// |Γ| short: 0.95, matched: 0.00
	// modulation depth: 0.48
}

// ExampleDesignLSection matches the transducer to a 50 Ω line at resonance.
func ExampleDesignLSection() {
	tr := piezo.MustDefault()
	fc := tr.SeriesResonance()
	m, err := piezo.DesignLSection(tr.Impedance(fc), 50, fc)
	if err != nil {
		panic(err)
	}
	fmt.Printf("|Γ| at design frequency: %.4f\n", m.MatchQuality(fc, tr.Impedance(fc)))
	fmt.Printf("|Γ| 5%% off frequency: %.2f\n", m.MatchQuality(fc*1.05, tr.Impedance(fc*1.05)))
	// Output:
	// |Γ| at design frequency: 0.0000
	// |Γ| 5% off frequency: 0.80
}
