package piezo

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestNewTransducerRealizesParams(t *testing.T) {
	p := DefaultParams()
	tr, err := NewTransducer(p)
	if err != nil {
		t.Fatal(err)
	}
	if fs := tr.SeriesResonance(); math.Abs(fs-p.ResonanceHz) > 1 {
		t.Errorf("series resonance %v, want %v", fs, p.ResonanceHz)
	}
	if q := tr.Qm(); math.Abs(q-p.Qm) > 0.01*p.Qm {
		t.Errorf("Qm %v, want %v", q, p.Qm)
	}
	if k2 := tr.CouplingK2(); math.Abs(k2-p.CouplingK2) > 1e-9 {
		t.Errorf("k² %v, want %v", k2, p.CouplingK2)
	}
	if fp := tr.ParallelResonance(); fp <= tr.SeriesResonance() {
		t.Error("anti-resonance must sit above series resonance")
	}
}

func TestNewTransducerValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.ResonanceHz = 0 },
		func(p *Params) { p.Qm = -1 },
		func(p *Params) { p.C0 = 0 },
		func(p *Params) { p.CouplingK2 = 0 },
		func(p *Params) { p.CouplingK2 = 1 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if _, err := NewTransducer(p); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestImpedanceDipsAtSeriesResonance(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	fp := tr.ParallelResonance()
	zs := cmplx.Abs(tr.Impedance(fs))
	zp := cmplx.Abs(tr.Impedance(fp))
	zoff := cmplx.Abs(tr.Impedance(fs * 0.7))
	if zs >= zoff {
		t.Errorf("|Z| at fs (%v) should be below off-resonance (%v)", zs, zoff)
	}
	if zp <= zoff {
		t.Errorf("|Z| at fp (%v) should peak above off-resonance (%v)", zp, zoff)
	}
	if zp < 20*zs {
		t.Errorf("resonance contrast too small: |Z(fp)|/|Z(fs)| = %v", zp/zs)
	}
}

func TestImpedancePositiveRealProperty(t *testing.T) {
	// A passive circuit must have non-negative resistance at all
	// frequencies.
	tr := MustDefault()
	f := func(x float64) bool {
		fHz := 100 + math.Mod(math.Abs(x), 1e6)
		return real(tr.Impedance(fHz)) >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponsePeaksAtResonance(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	if g := cmplx.Abs(tr.Response(fs)); math.Abs(g-1) > 1e-9 {
		t.Errorf("|H(fs)| = %v, want 1", g)
	}
	// -3 dB at approximately fs ± fs/(2Q).
	bw := tr.Bandwidth()
	gEdge := cmplx.Abs(tr.Response(fs + bw/2))
	if math.Abs(gEdge-1/math.Sqrt2) > 0.05 {
		t.Errorf("|H(fs+bw/2)| = %v, want ~0.707", gEdge)
	}
	// Far off resonance the response collapses.
	if g := cmplx.Abs(tr.Response(fs * 3)); g > 0.1 {
		t.Errorf("|H(3fs)| = %v, want < 0.1", g)
	}
}

func TestReflectionCoefficientStates(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	// Conjugate match absorbs: Γ = 0.
	if g := cmplx.Abs(tr.ReflectionCoefficient(fs, tr.MatchedLoad(fs))); g > 1e-9 {
		t.Errorf("matched |Γ| = %v, want 0", g)
	}
	// Short and open reflect strongly.
	gs := cmplx.Abs(tr.ReflectionCoefficient(fs, ShortLoad))
	go_ := cmplx.Abs(tr.ReflectionCoefficient(fs, OpenLoad))
	if gs < 0.8 || go_ < 0.8 {
		t.Errorf("short/open |Γ| = %v/%v, want near 1", gs, go_)
	}
}

func TestReflectionPassivityProperty(t *testing.T) {
	// For any passive load (Re z ≥ 0), |Γ| ≤ 1: the scatterer cannot
	// radiate more than it intercepts.
	tr := MustDefault()
	f := func(re, im, df float64) bool {
		r := math.Mod(math.Abs(re), 1e6)
		x := math.Mod(im, 1e6)
		fHz := tr.SeriesResonance() * (0.5 + math.Mod(math.Abs(df), 1.0))
		g := tr.ReflectionCoefficient(fHz, complex(r, x))
		return cmplx.Abs(g) <= 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestModulationDepth(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	// Short vs matched: |ΔΓ|/2 ≈ 1/2.
	d := tr.ModulationDepth(fs, ShortLoad, tr.MatchedLoad(fs))
	if d < 0.4 || d > 0.55 {
		t.Errorf("short/matched depth = %v, want ~0.5", d)
	}
	// Short vs open: the two Γ are nearly antipodal → depth near 1.
	d2 := tr.ModulationDepth(fs, ShortLoad, OpenLoad)
	if d2 < 0.85 {
		t.Errorf("short/open depth = %v, want near 1", d2)
	}
	// Same load: zero depth.
	if d3 := tr.ModulationDepth(fs, ShortLoad, ShortLoad); d3 != 0 {
		t.Errorf("same-load depth = %v", d3)
	}
}

func TestModulationDepthRollsOffResonance(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	dRes := tr.ModulationDepth(fs, ShortLoad, OpenLoad)
	dOff := tr.ModulationDepth(fs*1.2, ShortLoad, OpenLoad)
	// Off resonance the impedance is dominated by C0, so short/open Γ
	// contrast persists electrically, but the acoustic response doesn't;
	// the full chain (depth × |response|²) must roll off.
	resOn := cmplx.Abs(tr.Response(fs))
	resOff := cmplx.Abs(tr.Response(fs * 1.2))
	chainOn := dRes * resOn * resOn
	chainOff := dOff * resOff * resOff
	if chainOff > chainOn/2 {
		t.Errorf("backscatter chain should roll off: on=%v off=%v", chainOn, chainOff)
	}
}

func TestReceiveTransmitChain(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	v := tr.ReceiveVoltage(1.0, fs) // 1 Pa incident
	if math.Abs(cmplx.Abs(v)-tr.RxSensitivity) > 1e-12 {
		t.Errorf("receive voltage %v, want %v", cmplx.Abs(v), tr.RxSensitivity)
	}
	p := tr.TransmitPressure(complex(1, 0), fs)
	if math.Abs(cmplx.Abs(p)-tr.TxResponse) > 1e-12 {
		t.Errorf("transmit pressure %v, want %v", cmplx.Abs(p), tr.TxResponse)
	}
	// Off-resonance both shrink.
	if cmplx.Abs(tr.ReceiveVoltage(1.0, fs*2)) >= tr.RxSensitivity/2 {
		t.Error("receive chain should roll off")
	}
}

func TestDesignLSectionMatchesAtDesignFrequency(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	z := tr.Impedance(fs)
	for _, r0 := range []float64{25, 50, 200, 1000} {
		m, err := DesignLSection(z, r0, fs)
		if err != nil {
			t.Fatalf("r0=%v: %v", r0, err)
		}
		if q := m.MatchQuality(fs, z); q > 1e-6 {
			t.Errorf("r0=%v: |Γ| at design = %v, want ~0", r0, q)
		}
	}
}

func TestDesignLSectionDetunesOffFrequency(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	z := tr.Impedance(fs)
	m, err := DesignLSection(z, 50, fs)
	if err != nil {
		t.Fatal(err)
	}
	on := m.MatchQuality(fs, z)
	off := m.MatchQuality(fs*1.15, tr.Impedance(fs*1.15))
	if off <= on {
		t.Errorf("match should degrade off design frequency: on=%v off=%v", on, off)
	}
}

func TestDesignLSectionErrors(t *testing.T) {
	if _, err := DesignLSection(complex(0, 50), 50, 1e4); err == nil {
		t.Error("purely reactive load should be rejected")
	}
	if _, err := DesignLSection(complex(50, 0), -1, 1e4); err == nil {
		t.Error("negative target should be rejected")
	}
	if _, err := DesignLSection(complex(50, 0), 50, 0); err == nil {
		t.Error("zero frequency should be rejected")
	}
}

func TestDesignLSectionEqualResistance(t *testing.T) {
	// R_L == r0 with reactance: single series element cancels it.
	z := complex(50, 30)
	m, err := DesignLSection(z, 50, 1e4)
	if err != nil {
		t.Fatal(err)
	}
	if q := m.MatchQuality(1e4, z); q > 1e-9 {
		t.Errorf("|Γ| = %v, want 0", q)
	}
}

func TestDesignLSectionPropertyAllPassiveLoads(t *testing.T) {
	// Any load with positive resistance must be matchable, and the match
	// must be essentially perfect at the design frequency.
	f := func(re, im float64) bool {
		r := 1 + math.Mod(math.Abs(re), 5000)
		x := math.Mod(im, 5000)
		z := complex(r, x)
		m, err := DesignLSection(z, 50, 18.5e3)
		if err != nil {
			return false
		}
		return m.MatchQuality(18.5e3, z) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBandwidthSanity(t *testing.T) {
	tr := MustDefault()
	bw := tr.Bandwidth()
	// 18.5 kHz / Q≈28 → ~660 Hz: the subcarriers (hundreds of Hz) fit.
	if bw < 300 || bw > 1500 {
		t.Errorf("bandwidth %v Hz outside plausible range", bw)
	}
}

func TestModulationDepthSymmetryProperty(t *testing.T) {
	// |Γ(z1) − Γ(z2)| is symmetric in the two states, and bounded by 1
	// for passive loads (each |Γ| ≤ 1 ⇒ depth = |ΔΓ|/2 ≤ 1).
	tr := MustDefault()
	f := func(r1, x1, r2, x2, df float64) bool {
		z1 := complex(math.Abs(math.Mod(r1, 1e5)), math.Mod(x1, 1e5))
		z2 := complex(math.Abs(math.Mod(r2, 1e5)), math.Mod(x2, 1e5))
		fHz := tr.SeriesResonance() * (0.7 + math.Mod(math.Abs(df), 0.6))
		a := tr.ModulationDepth(fHz, z1, z2)
		b := tr.ModulationDepth(fHz, z2, z1)
		return math.Abs(a-b) < 1e-12 && a >= 0 && a <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatchQualityBoundsProperty(t *testing.T) {
	tr := MustDefault()
	fs := tr.SeriesResonance()
	m, err := DesignLSection(tr.Impedance(fs), 50, fs)
	if err != nil {
		t.Fatal(err)
	}
	f := func(df float64) bool {
		fHz := fs * (0.5 + math.Mod(math.Abs(df), 1.0))
		q := m.MatchQuality(fHz, tr.Impedance(fHz))
		return q >= 0 && q <= 1+1e-9 && !math.IsNaN(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
