package phy

import (
	"math/rand"
	"testing"

	"vab/internal/dsp"
)

// skewTrial runs a full acquire+demod pass against a node whose clock is
// off by ppm, returning the chip error count over a 128-chip burst.
func skewTrial(t *testing.T, ppm float64, seed int64) int {
	t.Helper()
	p := DefaultParams()
	p.ClockPPM = ppm
	m, err := NewModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver assumes a nominal clock.
	d, err := NewDemodulator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	chips := make([]byte, 128)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	g, err := m.GammaWaveform(chips)
	if err != nil {
		t.Fatal(err)
	}
	delay := 300
	y := dsp.GaussianNoise(make([]complex128, delay+len(g)+2048), 1e-4, rng)
	for i, v := range g {
		y[delay+i] += complex(0.2*v, 0)
	}
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.2)
	if err != nil {
		return len(chips) // total loss
	}
	acq = d.RefineTiming(y, acq, 24)
	soft, err := d.DemodChips(y, acq, len(chips))
	if err != nil {
		return len(chips)
	}
	return CountChipErrors(HardChips(soft), chips)
}

func TestClockSkewToleranceBudget(t *testing.T) {
	// Crystal-class errors (±100 ppm) must decode cleanly: over a
	// 128+31-chip burst at 500 cps, 100 ppm slips ~0.5 samples — well
	// inside a chip.
	for _, ppm := range []float64{-100, -20, 0, 20, 100} {
		if errs := skewTrial(t, ppm, 3); errs != 0 {
			t.Errorf("%+.0f ppm: %d chip errors, want 0", ppm, errs)
		}
	}
}

func TestClockSkewBreaksEventually(t *testing.T) {
	// RC-oscillator-class error (several thousand ppm) slips multiple
	// chips across the burst and must degrade visibly — confirming the
	// simulation actually models the impairment rather than ignoring it.
	errsBig := skewTrial(t, 8000, 5)
	if errsBig < 10 {
		t.Errorf("8000 ppm produced only %d chip errors; skew not modeled?", errsBig)
	}
	// And the degradation should be monotone-ish between the regimes.
	errsMid := skewTrial(t, 2000, 5)
	if errsMid > errsBig {
		t.Errorf("2000 ppm (%d errors) worse than 8000 ppm (%d)", errsMid, errsBig)
	}
}

func TestClockSkewStretchesBurst(t *testing.T) {
	p := DefaultParams()
	m0, _ := NewModulator(p)
	g0, _ := m0.GammaWaveform(make([]byte, 64))

	p.ClockPPM = -5000 // slow clock: longer burst
	ms, _ := NewModulator(p)
	gs, _ := ms.GammaWaveform(make([]byte, 64))
	if len(gs) <= len(g0) {
		t.Errorf("slow clock should stretch the burst: %d vs %d", len(gs), len(g0))
	}
	p.ClockPPM = 5000 // fast clock: shorter burst
	mf, _ := NewModulator(p)
	gf, _ := mf.GammaWaveform(make([]byte, 64))
	if len(gf) >= len(g0) {
		t.Errorf("fast clock should shrink the burst: %d vs %d", len(gf), len(g0))
	}
}
