package phy

import (
	"fmt"
	"math"
	"math/cmplx"
)

// OOKDemodulator is the node-side downlink receiver: a rectifying envelope
// detector, per-chip integrator and comparator — the only demodulator a
// battery-free node can afford (the paper's nodes decode reader commands
// with a handful of discrete components).
type OOKDemodulator struct {
	p Params
}

// NewOOKDemodulator builds the node receiver for the shared numerology.
func NewOOKDemodulator(p Params) (*OOKDemodulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &OOKDemodulator{p: p}, nil
}

// DetectStart scans the capture for the first chip-length window whose
// envelope exceeds factor times the capture's median envelope, returning
// the sample index where energy begins. It models the node's wake-up
// comparator. An error is returned when the capture never rises.
func (d *OOKDemodulator) DetectStart(y []complex128, factor float64) (int, error) {
	spc := d.p.SamplesPerChip()
	if len(y) < spc {
		return 0, fmt.Errorf("phy: capture shorter than one chip")
	}
	// Robust floor: median of per-window envelope means.
	var floor float64
	n := 0
	for i := 0; i+spc <= len(y); i += spc {
		floor += envMean(y[i : i+spc])
		n++
	}
	floor /= float64(n)
	thresh := floor * factor
	for i := 0; i+spc <= len(y); i++ {
		if envMean(y[i:i+spc]) > thresh {
			return i, nil
		}
	}
	return 0, fmt.Errorf("phy: no downlink energy rise found")
}

func envMean(y []complex128) float64 {
	var s float64
	for _, v := range y {
		s += cmplx.Abs(v)
	}
	return s / float64(len(y))
}

// DemodChips slices nChips chip windows starting at sample start,
// integrates the envelope per chip and compares against an adaptive
// midpoint threshold.
func (d *OOKDemodulator) DemodChips(y []complex128, start, nChips int) ([]byte, error) {
	spc := d.p.SamplesPerChip()
	need := start + nChips*spc
	if start < 0 || need > len(y) {
		return nil, fmt.Errorf("phy: OOK capture too short: need %d, have %d", need, len(y))
	}
	means := make([]float64, nChips)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range means {
		m := envMean(y[start+i*spc : start+(i+1)*spc])
		means[i] = m
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	thresh := (lo + hi) / 2
	out := make([]byte, nChips)
	for i, m := range means {
		if m > thresh {
			out[i] = 1
		}
	}
	return out, nil
}
