// Package phy implements VAB's physical layer on both sides of the link.
//
// Uplink (node → reader): the node cannot generate a carrier — it modulates
// its reflection coefficient. Chips are encoded as subcarrier frequencies
// (backscatter FSK): during each chip interval the node toggles its
// reflection between two states at rate f0 (chip 0) or f1 (chip 1), which
// moves the backscattered energy to sidebands at ±f0/±f1 around the
// carrier, away from the reader's own self-interference. The reader removes
// the near-carrier leakage, acquires the preamble by noncoherent
// correlation, and detects chips with per-tone Goertzel energy, optionally
// combining energy across resolvable multipath offsets.
//
// Downlink (reader → node): the reader on-off-keys its carrier; the node's
// receiver is a passive envelope detector and comparator, matching the
// microwatt power budget of a battery-free device.
package phy

import (
	"fmt"
	"math"

	"vab/internal/dsp"
)

// Params fixes the air interface numerology shared by modulator and
// demodulator.
type Params struct {
	SampleRate float64 // baseband sample rate, Hz
	ChipRate   float64 // chips per second; SampleRate/ChipRate must be integral
	F0, F1     float64 // subcarrier frequencies for chip 0 / chip 1, Hz

	// PreambleSeq is the ±1 synchronization sequence prepended to every
	// uplink burst (one chip per element).
	PreambleSeq []float64

	// ClockPPM models the node oscillator's frequency error in parts per
	// million. A battery-free node runs from a micro-power RC or crystal
	// oscillator whose tolerance the receiver must absorb: the node's chip
	// clock and subcarrier frequencies both scale by (1 + ppm·1e-6),
	// stretching the burst and detuning the tones. Zero is a perfect
	// clock; the receiver-tolerance test characterizes the usable budget.
	ClockPPM float64
}

// DefaultParams returns the system numerology used throughout the
// reproduction: 16 kHz complex baseband, 500 chips/s, subcarriers at 500 and
// 1000 Hz (orthogonal over a chip), and a 31-chip m-sequence preamble.
func DefaultParams() Params {
	pre, err := dsp.MSequence(5)
	if err != nil {
		panic(err) // degree 5 is always supported
	}
	return Params{
		SampleRate:  16e3,
		ChipRate:    500,
		F0:          500,
		F1:          1000,
		PreambleSeq: pre,
	}
}

// Validate checks internal consistency of the numerology.
func (p *Params) Validate() error {
	if p.SampleRate <= 0 || p.ChipRate <= 0 {
		return fmt.Errorf("phy: sample rate %.3g and chip rate %.3g must be positive", p.SampleRate, p.ChipRate)
	}
	spc := p.SampleRate / p.ChipRate
	if spc != math.Trunc(spc) || spc < 4 {
		return fmt.Errorf("phy: samples per chip %.3f must be an integer >= 4", spc)
	}
	if p.F0 == p.F1 {
		return fmt.Errorf("phy: subcarriers must differ")
	}
	ny := p.SampleRate / 2
	if math.Abs(p.F0) >= ny || math.Abs(p.F1) >= ny || p.F0 == 0 || p.F1 == 0 {
		return fmt.Errorf("phy: subcarriers (%.3g, %.3g) must be nonzero and below Nyquist %.3g", p.F0, p.F1, ny)
	}
	// Each tone must sit at a nonzero integer multiple of the chip rate:
	// this makes the tones orthogonal over a chip (zero inter-tone
	// leakage) and places them exactly on the nulls-complement of the
	// receiver's comb notch, so self-interference suppression costs no
	// signal energy.
	for _, f := range []float64{p.F0, p.F1} {
		k := f / p.ChipRate
		if math.Abs(k-math.Round(k)) > 1e-9 || math.Round(k) == 0 {
			return fmt.Errorf("phy: tone %.3g Hz not a nonzero multiple of chip rate %.3g", f, p.ChipRate)
		}
	}
	if len(p.PreambleSeq) < 7 {
		return fmt.Errorf("phy: preamble of %d chips too short to acquire", len(p.PreambleSeq))
	}
	return nil
}

// SamplesPerChip returns the integer oversampling factor.
func (p *Params) SamplesPerChip() int { return int(p.SampleRate / p.ChipRate) }

// BitRate returns the raw chip-level bit rate (before line coding and FEC):
// one chip carries one raw bit in backscatter FSK.
func (p *Params) BitRate() float64 { return p.ChipRate }

// chipFreq maps a chip value to its subcarrier.
func (p *Params) chipFreq(chip byte) float64 {
	if chip == 0 {
		return p.F0
	}
	return p.F1
}
