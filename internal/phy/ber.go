package phy

import (
	"math"

	"vab/internal/dsp"
)

// Analytic bit-error-rate models for the link-level fidelity tier. The
// waveform simulator and these closed forms are cross-validated by tests;
// wide Monte-Carlo sweeps (hundreds of range points × thousands of trials)
// use the closed forms.

// BERNoncoherentFSK returns the bit error probability of noncoherent binary
// orthogonal FSK on AWGN at the given Eb/N0 (linear): ½·exp(−Eb/2N0).
func BERNoncoherentFSK(ebn0 float64) float64 {
	if ebn0 < 0 {
		return 0.5
	}
	return 0.5 * math.Exp(-ebn0/2)
}

// BERNoncoherentFSKRician returns the average bit error probability of
// noncoherent binary FSK over a Rician fading channel with K-factor k
// (linear) and mean Eb/N0 (linear):
//
//	Pb = (1+K)/(2+2K+γ̄) · exp(−K·γ̄/(2+2K+γ̄))
//
// K → ∞ recovers the AWGN expression; K = 0 the Rayleigh expression
// 1/(2+γ̄).
func BERNoncoherentFSKRician(ebn0, k float64) float64 {
	if math.IsInf(k, 1) {
		return BERNoncoherentFSK(ebn0)
	}
	if ebn0 < 0 {
		return 0.5
	}
	den := 2 + 2*k + ebn0
	return (1 + k) / den * math.Exp(-k*ebn0/den)
}

// BERCoherentBPSK returns Q(√(2·Eb/N0)), the coherent matched-filter bound
// used as the "what a powered modem could do" reference curve.
func BERCoherentBPSK(ebn0 float64) float64 {
	if ebn0 < 0 {
		return 0.5
	}
	return dsp.Q(math.Sqrt(2 * ebn0))
}

// EbN0FromToneSNR converts the demodulator's per-chip tone SNR (linear,
// signal-to-noise within one Goertzel bin over a chip) to Eb/N0 for the raw
// chip stream. For the orthogonal-tone energy detector the per-chip tone
// SNR *is* Es/N0 for the detection statistic; with one raw bit per chip,
// Eb/N0 = tone SNR.
func EbN0FromToneSNR(toneSNR float64) float64 { return toneSNR }

// RequiredEbN0NoncoherentFSK inverts BERNoncoherentFSK: the Eb/N0 (linear)
// needed to hit a target BER on AWGN.
func RequiredEbN0NoncoherentFSK(ber float64) float64 {
	if ber >= 0.5 {
		return 0
	}
	return -2 * math.Log(2*ber)
}

// RequiredEbN0Rician inverts BERNoncoherentFSKRician numerically (bisection
// over dB) for a target BER under Rician fading with factor k (linear).
func RequiredEbN0Rician(ber, k float64) float64 {
	if ber >= 0.5 {
		return 0
	}
	lo, hi := -10.0, 80.0 // dB search bracket
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if BERNoncoherentFSKRician(dsp.FromDB(mid), k) > ber {
			lo = mid
		} else {
			hi = mid
		}
	}
	return dsp.FromDB((lo + hi) / 2)
}

// CountChipErrors compares detected chips against the transmitted reference
// and returns the number of mismatches. Slices must have equal length.
func CountChipErrors(got, want []byte) int {
	if len(got) != len(want) {
		panic("phy: chip slice length mismatch")
	}
	n := 0
	for i := range got {
		if got[i] != want[i] {
			n++
		}
	}
	return n
}
