package phy

import (
	"fmt"
	"math"

	"vab/internal/dsp"
)

// M-ary backscatter FSK: an extension beyond the paper's binary subcarrier
// signaling. The node toggles its reflection at one of M = 2^k subcarrier
// rates per chip, carrying k bits per chip at the same switching-energy
// cost — the natural throughput upgrade for a backscatter node, whose
// oscillator can synthesize several toggle rates far more cheaply than it
// could synthesize phases. The price is detection SNR (the per-tone energy
// threshold rises with M) and bandwidth (M tones must fit inside the
// transducer's resonance).

// MFSKParams fixes the M-ary numerology.
type MFSKParams struct {
	SampleRate float64
	ChipRate   float64
	// Tones are the M subcarrier frequencies (M a power of two ≥ 2), each
	// a distinct nonzero integer multiple of ChipRate.
	Tones []float64
	// PreambleSeq is the ±1 acquisition sequence, signaled on the lowest
	// (−1) and highest (+1) tones for maximum distance.
	PreambleSeq []float64
}

// DefaultMFSKParams returns a 4-FSK numerology sharing the binary system's
// sample rate and chip rate, with tones at 500/1000/1500/2000 Hz.
func DefaultMFSKParams() MFSKParams {
	pre, err := dsp.MSequence(5)
	if err != nil {
		panic(err)
	}
	return MFSKParams{
		SampleRate:  16e3,
		ChipRate:    500,
		Tones:       []float64{500, 1000, 1500, 2000},
		PreambleSeq: pre,
	}
}

// Validate checks the numerology.
func (p *MFSKParams) Validate() error {
	if p.SampleRate <= 0 || p.ChipRate <= 0 {
		return fmt.Errorf("phy: mfsk sample rate %.3g / chip rate %.3g must be positive", p.SampleRate, p.ChipRate)
	}
	spc := p.SampleRate / p.ChipRate
	if spc != math.Trunc(spc) || spc < 4 {
		return fmt.Errorf("phy: mfsk samples per chip %.3f must be an integer >= 4", spc)
	}
	m := len(p.Tones)
	if m < 2 || m&(m-1) != 0 {
		return fmt.Errorf("phy: mfsk needs a power-of-two tone count >= 2, got %d", m)
	}
	seen := map[float64]bool{}
	ny := p.SampleRate / 2
	for _, f := range p.Tones {
		k := f / p.ChipRate
		if math.Abs(k-math.Round(k)) > 1e-9 || math.Round(k) == 0 {
			return fmt.Errorf("phy: mfsk tone %.3g Hz not a nonzero multiple of chip rate %.3g", f, p.ChipRate)
		}
		if math.Abs(f) >= ny {
			return fmt.Errorf("phy: mfsk tone %.3g Hz at or above Nyquist %.3g", f, ny)
		}
		if seen[f] {
			return fmt.Errorf("phy: duplicate mfsk tone %.3g Hz", f)
		}
		seen[f] = true
	}
	if len(p.PreambleSeq) < 7 {
		return fmt.Errorf("phy: mfsk preamble of %d chips too short", len(p.PreambleSeq))
	}
	return nil
}

// SamplesPerChip returns the oversampling factor.
func (p *MFSKParams) SamplesPerChip() int { return int(p.SampleRate / p.ChipRate) }

// BitsPerSymbol returns log2(M).
func (p *MFSKParams) BitsPerSymbol() int {
	k := 0
	for m := len(p.Tones); m > 1; m >>= 1 {
		k++
	}
	return k
}

// BitRate returns the raw bit rate: ChipRate · log2(M).
func (p *MFSKParams) BitRate() float64 {
	return p.ChipRate * float64(p.BitsPerSymbol())
}

// MFSKModulator renders symbol streams into node reflection waveforms.
type MFSKModulator struct {
	p MFSKParams
}

// NewMFSKModulator validates and builds a modulator.
func NewMFSKModulator(p MFSKParams) (*MFSKModulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &MFSKModulator{p: p}, nil
}

// BurstSamples returns the waveform length for n payload symbols.
func (m *MFSKModulator) BurstSamples(n int) int {
	return (len(m.p.PreambleSeq) + n) * m.p.SamplesPerChip()
}

// GammaWaveform renders preamble + symbols as the 0/1 reflection toggle,
// phase-continuous across chips. Symbols index the tone table.
func (m *MFSKModulator) GammaWaveform(symbols []byte) ([]float64, error) {
	mTones := len(m.p.Tones)
	for i, s := range symbols {
		if int(s) >= mTones {
			return nil, fmt.Errorf("phy: symbol %d at %d exceeds M=%d", s, i, mTones)
		}
	}
	spc := m.p.SamplesPerChip()
	// Preamble on the extreme tones.
	all := make([]float64, 0, (len(m.p.PreambleSeq)+len(symbols))*spc)
	phase := 0.0
	emit := func(f float64) {
		for s := 0; s < spc; s++ {
			if math.Sin(phase) >= 0 {
				all = append(all, 1)
			} else {
				all = append(all, 0)
			}
			phase += 2 * math.Pi * f / m.p.SampleRate
		}
	}
	for _, v := range m.p.PreambleSeq {
		if v > 0 {
			emit(m.p.Tones[mTones-1])
		} else {
			emit(m.p.Tones[0])
		}
	}
	for _, s := range symbols {
		emit(m.p.Tones[s])
	}
	return all, nil
}

// MFSKDemodulator detects M-ary symbols with a Goertzel tone bank.
type MFSKDemodulator struct {
	p        MFSKParams
	bank     *dsp.ToneBank
	preamble []complex128
}

// NewMFSKDemodulator validates and builds a demodulator.
func NewMFSKDemodulator(p MFSKParams) (*MFSKDemodulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &MFSKDemodulator{p: p, bank: dsp.NewToneBank(p.Tones, p.SampleRate)}
	// Reference waveform: upper-sideband exponentials of the preamble.
	spc := p.SamplesPerChip()
	ref := make([]complex128, 0, len(p.PreambleSeq)*spc)
	phase := 0.0
	for _, v := range p.PreambleSeq {
		f := p.Tones[0]
		if v > 0 {
			f = p.Tones[len(p.Tones)-1]
		}
		for s := 0; s < spc; s++ {
			ref = append(ref, complex(math.Cos(phase), math.Sin(phase)))
			phase += 2 * math.Pi * f / p.SampleRate
		}
	}
	d.preamble = ref
	return d, nil
}

// Suppress applies the comb SI notch (identical nulls as the binary
// receiver: the tones sit on chip-rate multiples by construction).
func (d *MFSKDemodulator) Suppress(y []complex128) []complex128 {
	l := d.p.SamplesPerChip()
	var sum complex128
	hist := make([]complex128, l)
	for i, v := range y {
		sum += v
		idx := i % l
		sum -= hist[idx]
		hist[idx] = v
		n := i + 1
		if n > l {
			n = l
		}
		y[i] = v - sum/complex(float64(n), 0)
	}
	return y
}

// Acquire locates the burst by normalized noncoherent correlation.
func (d *MFSKDemodulator) Acquire(y []complex128, minMetric float64) (Acquisition, error) {
	if len(y) < len(d.preamble) {
		return Acquisition{}, fmt.Errorf("phy: mfsk capture shorter than preamble")
	}
	nc := dsp.NormXCorr(y, d.preamble)
	idx, peak := dsp.ArgMax(nc)
	if peak < minMetric {
		return Acquisition{}, fmt.Errorf("phy: mfsk no preamble (peak %.3f < %.3f)", peak, minMetric)
	}
	return Acquisition{Start: idx, Metric: peak}, nil
}

// SoftSymbol is one M-ary decision with its evidence.
type SoftSymbol struct {
	Value    byte
	Energies []float64
}

// Margin returns the normalized winner-vs-runner-up energy separation.
func (s SoftSymbol) Margin() float64 {
	var best, second float64
	best = math.Inf(-1)
	second = math.Inf(-1)
	var total float64
	for _, e := range s.Energies {
		total += e
		if e > best {
			second = best
			best = e
		} else if e > second {
			second = e
		}
	}
	if total <= 0 {
		return 0
	}
	return (best - second) / total
}

// DemodSymbols detects n payload symbols following the acquired preamble.
func (d *MFSKDemodulator) DemodSymbols(y []complex128, acq Acquisition, n int) ([]SoftSymbol, error) {
	spc := d.p.SamplesPerChip()
	start := acq.Start + len(d.preamble)
	if start+n*spc > len(y) {
		return nil, fmt.Errorf("phy: mfsk capture too short: need %d, have %d", start+n*spc, len(y))
	}
	out := make([]SoftSymbol, n)
	for i := 0; i < n; i++ {
		win := y[start+i*spc : start+(i+1)*spc]
		e := d.bank.Energies(make([]float64, len(d.p.Tones)), win)
		best, _ := dsp.ArgMax(e)
		out[i] = SoftSymbol{Value: byte(best), Energies: e}
	}
	return out, nil
}

// HardSymbols extracts symbol values.
func HardSymbols(soft []SoftSymbol) []byte {
	out := make([]byte, len(soft))
	for i, s := range soft {
		out[i] = s.Value
	}
	return out
}

// SymbolsFromBits packs bits (MSB first per symbol) into M-ary symbols of
// k bits each; the bit count must be a multiple of k.
func SymbolsFromBits(bits []byte, k int) ([]byte, error) {
	if k < 1 || k > 7 {
		return nil, fmt.Errorf("phy: bits per symbol %d out of range", k)
	}
	if len(bits)%k != 0 {
		return nil, fmt.Errorf("phy: %d bits not divisible by %d", len(bits), k)
	}
	out := make([]byte, 0, len(bits)/k)
	for i := 0; i < len(bits); i += k {
		var s byte
		for j := 0; j < k; j++ {
			if bits[i+j] > 1 {
				return nil, fmt.Errorf("phy: non-binary bit %d", bits[i+j])
			}
			s = s<<1 | bits[i+j]
		}
		out = append(out, s)
	}
	return out, nil
}

// BitsFromSymbols unpacks M-ary symbols into bits (MSB first).
func BitsFromSymbols(symbols []byte, k int) ([]byte, error) {
	if k < 1 || k > 7 {
		return nil, fmt.Errorf("phy: bits per symbol %d out of range", k)
	}
	out := make([]byte, 0, len(symbols)*k)
	for _, s := range symbols {
		if int(s) >= 1<<k {
			return nil, fmt.Errorf("phy: symbol %d exceeds %d bits", s, k)
		}
		for j := k - 1; j >= 0; j-- {
			out = append(out, (s>>j)&1)
		}
	}
	return out, nil
}

// BERNoncoherentMFSK returns the symbol-error-derived bit error probability
// of noncoherent M-ary orthogonal FSK on AWGN at Es/N0 (linear), using the
// union-bound-exact sum
//
//	Ps = Σ_{i=1..M−1} (−1)^{i+1} C(M−1,i)/(i+1) · exp(−i·Es/((i+1)N0))
//
// and the orthogonal-signaling bit-error relation Pb = Ps·M/(2(M−1)).
func BERNoncoherentMFSK(esn0 float64, m int) float64 {
	if m < 2 {
		return 0
	}
	if esn0 < 0 {
		esn0 = 0
	}
	var ps float64
	sign := 1.0
	c := float64(m - 1) // running binomial C(M-1, i)
	for i := 1; i <= m-1; i++ {
		ps += sign * c / float64(i+1) * math.Exp(-float64(i)*esn0/float64(i+1))
		sign = -sign
		c = c * float64(m-1-i) / float64(i+1)
	}
	if ps < 0 {
		ps = 0
	}
	if ps > 1 {
		ps = 1
	}
	return ps * float64(m) / (2 * float64(m-1))
}
