package phy

import (
	"fmt"
	"math"
	"math/cmplx"

	"vab/internal/dsp"
)

// Demodulator recovers chips from the reader's received baseband waveform:
// DC-notch self-interference suppression, noncoherent preamble acquisition,
// per-chip dual-tone energy detection, and optional multipath diversity
// combining.
type Demodulator struct {
	p        Params
	bank     *dsp.ToneBank
	preamble []complex128    // upper-sideband reference waveform of the preamble
	corr     *dsp.Correlator // matched filter on preamble with cached reference spectrum

	// CombineOffsets lists additional sample offsets (relative to the
	// acquired start) whose tone energy is summed into each chip decision —
	// the diversity combiner across resolvable multipath arrivals. Empty
	// means single-path detection.
	CombineOffsets []int

	// Reused scratch: the demodulator runs once per round for thousands of
	// rounds, so per-call buffers (the correlation surface, the notch
	// history ring, the diversity branch table, the tone-energy pair) are
	// owned by the instance instead of allocated per capture. This is part
	// of why a Demodulator is not safe for concurrent use.
	ncBuf        []float64
	suppressHist []complex128
	branchBuf    []demodBranch
	eBuf         [2]float64
}

// demodBranch is one diversity branch of the chip detector: a sample offset
// and its MRC weight.
type demodBranch struct {
	off int
	w   float64
}

// NewDemodulator builds a demodulator for the given numerology.
func NewDemodulator(p Params) (*Demodulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Demodulator{
		p:    p,
		bank: dsp.NewToneBank([]float64{p.F0, p.F1}, p.SampleRate),
	}
	d.preamble = d.referenceWaveform()
	d.corr = dsp.NewCorrelator(d.preamble)
	return d, nil
}

// referenceWaveform builds the complex upper-sideband template of the
// preamble: for each preamble chip, a complex exponential at the chip's
// subcarrier, phase-continuous across the burst. A square-wave reflection
// toggle concentrates 4/π² ≈ 40% of its modulated power in each fundamental
// sideband; correlating against the clean exponential captures it.
func (d *Demodulator) referenceWaveform() []complex128 {
	spc := d.p.SamplesPerChip()
	out := make([]complex128, len(d.p.PreambleSeq)*spc)
	phase := 0.0
	idx := 0
	for _, v := range d.p.PreambleSeq {
		chip := byte(0)
		if v > 0 {
			chip = 1
		}
		f := d.p.chipFreq(chip)
		for s := 0; s < spc; s++ {
			out[idx] = cmplx.Rect(1, phase)
			idx++
			phase += 2 * math.Pi * f / d.p.SampleRate
		}
	}
	return out
}

// Suppress removes near-carrier self-interference — and the burst's own DC
// component, which switches on abruptly when the node starts modulating —
// in place and returns its argument. It must be applied to the raw capture
// before acquisition.
//
// The notch is a comb subtractor: y[n] = x[n] − mean(x[n−L+1…n]) with L one
// chip of samples. The moving average has exact nulls at every nonzero
// multiple of the chip rate, so both subcarrier tones pass *untouched*
// (Params.Validate pins the tones to chip-rate multiples), DC is removed
// exactly, and — unlike an IIR notch, whose impulse response smeared the
// burst-onset step across hundreds of samples — its transient is bounded by
// one chip.
func (d *Demodulator) Suppress(y []complex128) []complex128 {
	l := d.p.SamplesPerChip()
	var sum complex128
	if cap(d.suppressHist) < l {
		d.suppressHist = make([]complex128, l)
	}
	hist := d.suppressHist[:l]
	for i := range hist {
		hist[i] = 0
	}
	for i, v := range y {
		sum += v
		idx := i % l
		sum -= hist[idx]
		hist[idx] = v
		n := i + 1
		if n > l {
			n = l
		}
		y[i] = v - sum/complex(float64(n), 0)
	}
	return y
}

// PathPeak is a secondary multipath arrival found during acquisition.
type PathPeak struct {
	Offset int     // samples after the main arrival
	Gain   float64 // correlation amplitude relative to the main peak (0..1]
}

// Acquisition reports where a burst was found.
type Acquisition struct {
	Start  int        // sample index of the first preamble sample
	Metric float64    // normalized correlation peak in [0, 1]
	Peaks  []PathPeak // secondary multipath arrivals (for diversity combining)
}

// Acquire locates the preamble in y by normalized noncoherent correlation.
// minMetric (0…1, typical 0.25) rejects noise-only captures. Secondary
// correlation peaks within two chip durations after the main peak are
// reported for diversity combining.
func (d *Demodulator) Acquire(y []complex128, minMetric float64) (Acquisition, error) {
	if len(y) < len(d.preamble) {
		return Acquisition{}, fmt.Errorf("phy: capture of %d samples shorter than preamble %d", len(y), len(d.preamble))
	}
	nOut := len(y) - len(d.preamble) + 1
	if cap(d.ncBuf) < nOut {
		d.ncBuf = make([]float64, nOut)
	}
	nc := d.ncBuf[:nOut]
	d.corr.NormXCorrInto(nc, y)
	idx, peak := dsp.ArgMax(nc)
	if peak < minMetric {
		return Acquisition{}, fmt.Errorf("phy: no preamble found (peak %.3f < %.3f)", peak, minMetric)
	}
	acq := Acquisition{Start: idx, Metric: peak}
	// Secondary peaks: local maxima above 55% of the main peak within two
	// chip durations after it, at least half a chip away. The relative
	// correlation amplitude estimates the branch gain for MRC weighting.
	spc := d.p.SamplesPerChip()
	for off := spc / 2; off <= 2*spc; off++ {
		j := idx + off
		if j <= 0 || j >= len(nc)-1 {
			break
		}
		if nc[j] > 0.55*peak && nc[j] >= nc[j-1] && nc[j] >= nc[j+1] {
			acq.Peaks = append(acq.Peaks, PathPeak{Offset: off, Gain: nc[j] / peak})
		}
	}
	return acq, nil
}

// RefineTiming sweeps sub-chip offsets around an acquisition and returns
// the acquisition shifted to the offset that maximizes the mean soft margin
// over the first probe chips of the payload. Correlation peaks can land
// between two comparable multipath arrivals (the normalized correlator sees
// their envelope sum); chip windows straddling a boundary then split energy
// across both tones. This classic decision-directed timing step recovers
// the alignment.
func (d *Demodulator) RefineTiming(y []complex128, acq Acquisition, probeChips int) Acquisition {
	spc := d.p.SamplesPerChip()
	best := acq
	bestMetric := -1.0
	step := spc / 8
	if step < 1 {
		step = 1
	}
	for off := -spc / 2; off <= spc/2; off += step {
		cand := acq
		cand.Start += off
		if cand.Start < 0 {
			continue
		}
		soft, err := d.DemodChips(y, cand, probeChips)
		if err != nil {
			continue
		}
		if m := MeanMargin(soft); m > bestMetric {
			bestMetric = m
			best = cand
		}
	}
	return best
}

// SoftChip is one chip decision with its evidence.
type SoftChip struct {
	Value byte
	E0    float64 // tone-0 energy
	E1    float64 // tone-1 energy
}

// Margin returns a soft reliability metric in [0, 1): the normalized energy
// difference between the winning and losing tones.
func (s SoftChip) Margin() float64 {
	t := s.E0 + s.E1
	if t <= 0 {
		return 0
	}
	return math.Abs(s.E1-s.E0) / t
}

// DemodChips detects n payload chips from y, where acq locates the
// preamble; the payload starts one preamble length after acq.Start. Tone
// energies are combined maximal-ratio style across the main arrival, the
// configured diversity offsets (unit weight), and the acquisition-reported
// multipath peaks (weighted by their estimated branch power |g|², so a
// weak echo contributes its information without importing a full branch of
// noise).
func (d *Demodulator) DemodChips(y []complex128, acq Acquisition, n int) ([]SoftChip, error) {
	spc := d.p.SamplesPerChip()
	start := acq.Start + len(d.preamble)
	need := start + n*spc
	if need > len(y) {
		return nil, fmt.Errorf("phy: capture too short: need %d samples, have %d", need, len(y))
	}
	branches := append(d.branchBuf[:0], demodBranch{0, 1})
	for _, off := range d.CombineOffsets {
		branches = append(branches, demodBranch{off, 1})
	}
	for _, p := range acq.Peaks {
		branches = append(branches, demodBranch{p.Offset, p.Gain * p.Gain})
	}
	d.branchBuf = branches
	out := make([]SoftChip, n)
	e := d.eBuf[:]
	for i := 0; i < n; i++ {
		var e0, e1 float64
		for _, b := range branches {
			lo := start + i*spc + b.off
			hi := lo + spc
			if lo < 0 || hi > len(y) {
				continue
			}
			d.bank.Energies(e, y[lo:hi])
			e0 += b.w * e[0]
			e1 += b.w * e[1]
		}
		sc := SoftChip{E0: e0, E1: e1}
		if e1 > e0 {
			sc.Value = 1
		}
		out[i] = sc
	}
	return out, nil
}

// HardChips extracts the chip values from soft decisions.
func HardChips(soft []SoftChip) []byte {
	out := make([]byte, len(soft))
	for i, s := range soft {
		out[i] = s.Value
	}
	return out
}

// MeanMargin returns the average soft margin across a burst, a cheap SNR
// proxy used by rate adaptation and link diagnostics.
func MeanMargin(soft []SoftChip) float64 {
	if len(soft) == 0 {
		return 0
	}
	var s float64
	for _, c := range soft {
		s += c.Margin()
	}
	return s / float64(len(soft))
}

// EstimateSNR estimates the per-chip tone SNR (linear) from soft decisions:
// winning-tone energy over losing-tone energy, averaged. The losing tone of
// an orthogonal pair holds only noise, so the ratio estimates
// (signal+noise)/noise; subtracting 1 yields SNR.
func EstimateSNR(soft []SoftChip) float64 {
	if len(soft) == 0 {
		return 0
	}
	var win, lose float64
	for _, c := range soft {
		w, l := c.E0, c.E1
		if c.Value == 1 {
			w, l = c.E1, c.E0
		}
		win += w
		lose += l
	}
	if lose <= 0 {
		return math.Inf(1)
	}
	r := win/lose - 1
	if r < 0 {
		return 0
	}
	return r
}
