package phy

// AdaptiveCanceller is a single-tap LMS canceller that subtracts the
// projector's direct-path leakage from the hydrophone capture using the
// known transmit envelope as reference. One complex tap suffices because
// the leakage is the dominant specular coupling at essentially zero delay;
// the residual (multipath leakage through the water column) is handled by
// the demodulator's DC notch.
type AdaptiveCanceller struct {
	w  complex128 // leakage estimate
	mu float64    // normalized step size in (0, 1]
}

// NewAdaptiveCanceller creates a canceller with the given normalized LMS
// step (0.05 is a robust default; larger adapts faster, noisier).
func NewAdaptiveCanceller(mu float64) *AdaptiveCanceller {
	if mu <= 0 || mu > 1 {
		panic("phy: canceller step must be in (0, 1]")
	}
	return &AdaptiveCanceller{mu: mu}
}

// Weight returns the current complex leakage estimate.
func (c *AdaptiveCanceller) Weight() complex128 { return c.w }

// Prime seeds the leakage estimate with the block least-squares solution
// w = Σy·conj(x)/Σ|x|² over the given capture. A cold-started LMS tap
// otherwise produces a large error transient during its first dozens of
// samples, which the downstream DC notch smears over its own (much longer)
// time constant, burying the burst; a deployed reader never sees this
// because it cancels continuously. Subcarrier-modulated content in y is
// near-orthogonal to the constant leakage and barely biases the estimate.
func (c *AdaptiveCanceller) Prime(y, x []complex128) {
	if len(y) != len(x) {
		panic("phy: canceller length mismatch")
	}
	var num complex128
	var den float64
	for i := range x {
		xi := x[i]
		num += y[i] * complex(real(xi), -imag(xi))
		den += real(xi)*real(xi) + imag(xi)*imag(xi)
	}
	if den > 0 {
		c.w = num / complex(den, 0)
	}
}

// Process subtracts the estimated leakage from y in place, adapting the
// estimate sample by sample against the transmit reference x. Slices must
// have equal length. Returns y.
func (c *AdaptiveCanceller) Process(y, x []complex128) []complex128 {
	if len(y) != len(x) {
		panic("phy: canceller length mismatch")
	}
	for i := range y {
		xi := x[i]
		e := y[i] - c.w*xi
		y[i] = e
		// Normalized LMS update: w += µ·e·conj(x)/|x|².
		p := real(xi)*real(xi) + imag(xi)*imag(xi)
		if p > 0 {
			c.w += complex(c.mu/p, 0) * e * complex(real(xi), -imag(xi))
		}
	}
	return y
}

// Reset clears the leakage estimate.
func (c *AdaptiveCanceller) Reset() { c.w = 0 }
