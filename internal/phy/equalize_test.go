package phy

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"vab/internal/dsp"
)

// twoPathCapture builds a capture with a main arrival and one strong late
// echo (the SIR-limited regime the equalizer targets).
func twoPathCapture(t *testing.T, chips []byte, echoChips float64, echoGain complex128, noise float64, seed int64) []complex128 {
	t.Helper()
	p := DefaultParams()
	m, err := NewModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.GammaWaveform(chips)
	if err != nil {
		t.Fatal(err)
	}
	spc := p.SamplesPerChip()
	off := int(echoChips * float64(spc))
	rng := rand.New(rand.NewSource(seed))
	y := dsp.GaussianNoise(make([]complex128, 200+len(g)+off+256), noise, rng)
	for i, v := range g {
		y[200+i] += complex(0.1*v, 0)
		y[200+off+i] += echoGain * complex(0.1*v, 0)
	}
	return y
}

func TestEqualizerCancelsStrongLateEcho(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	chips := make([]byte, 160)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	// Echo 1.5 chips late at 85% amplitude: SIR ≈ 1.4 dB, the regime where
	// plain detection makes steady errors.
	y := twoPathCapture(t, chips, 1.5, complex(0.6, 0.6), 1e-5, 9)
	d, err := NewDemodulator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.2)
	if err != nil {
		t.Fatal(err)
	}

	plain, err := d.DemodChips(y, acq, len(chips))
	if err != nil {
		t.Fatal(err)
	}
	errPlain := CountChipErrors(HardChips(plain), chips)

	eq, echoes, err := d.EqualizeAndDemod(y, acq, len(chips), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(echoes) == 0 {
		t.Fatal("equalizer found no echo to cancel")
	}
	errEq := CountChipErrors(HardChips(eq), chips)

	if errPlain == 0 {
		t.Fatalf("test not in the ISI-limited regime (plain had no errors)")
	}
	if errEq*2 > errPlain {
		t.Errorf("equalizer did not halve errors: plain %d, equalized %d", errPlain, errEq)
	}
}

func TestEqualizerNoOpOnCleanChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	chips := make([]byte, 96)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	p := DefaultParams()
	m, _ := NewModulator(p)
	g, _ := m.GammaWaveform(chips)
	y := dsp.GaussianNoise(make([]complex128, 300+len(g)+128), 1e-5, rng)
	for i, v := range g {
		y[300+i] += complex(0.1*v, 0)
	}
	d, _ := NewDemodulator(p)
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	soft, echoes, err := d.EqualizeAndDemod(y, acq, len(chips), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(echoes) != 0 {
		t.Errorf("clean channel produced %d phantom echoes", len(echoes))
	}
	if n := CountChipErrors(HardChips(soft), chips); n != 0 {
		t.Errorf("%d errors on a clean channel", n)
	}
}

func TestEqualizerEstimatesEchoGain(t *testing.T) {
	// A single echo 2 chips late at 50% relative amplitude with a known
	// phase: the joint fit must locate it and recover the gain ratio.
	rng := rand.New(rand.NewSource(46))
	chips := make([]byte, 96)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	gRel := complex(0.3, -0.4) // |·| = 0.5
	y := twoPathCapture(t, chips, 2.0, gRel, 1e-6, 12)
	d, _ := NewDemodulator(DefaultParams())
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	_, echoes, err := d.EqualizeAndDemod(y, acq, len(chips), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(echoes) != 1 {
		t.Fatalf("found %d echoes, want 1 (%v)", len(echoes), echoes)
	}
	p := DefaultParams()
	spc := p.SamplesPerChip()
	if echoes[0].Offset != 2*spc {
		t.Errorf("echo offset %d, want %d", echoes[0].Offset, 2*spc)
	}
	if r := cmplx.Abs(echoes[0].Gain); r < 0.4 || r > 0.6 {
		t.Errorf("relative echo gain %.3f, want ~0.5", r)
	}
}
