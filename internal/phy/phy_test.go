package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vab/internal/dsp"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.SamplesPerChip() != 32 {
		t.Errorf("samples per chip = %d, want 32", p.SamplesPerChip())
	}
	if p.BitRate() != 500 {
		t.Errorf("bit rate = %v", p.BitRate())
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.SampleRate = 0 },
		func(p *Params) { p.ChipRate = -1 },
		func(p *Params) { p.ChipRate = 499 },                  // non-integer spc
		func(p *Params) { p.F1 = p.F0 },                       // equal tones
		func(p *Params) { p.F0 = 0 },                          // zero tone
		func(p *Params) { p.F1 = 9e3 },                        // above Nyquist (16k/2=8k)
		func(p *Params) { p.F1 = p.F0 + 750 },                 // non-orthogonal spacing
		func(p *Params) { p.PreambleSeq = p.PreambleSeq[:3] }, // too short
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestGammaWaveformStructure(t *testing.T) {
	m, err := NewModulator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	chips := []byte{0, 1, 1, 0}
	g, err := m.GammaWaveform(chips)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != m.BurstSamples(len(chips)) {
		t.Fatalf("waveform length %d, want %d", len(g), m.BurstSamples(len(chips)))
	}
	// Binary values only.
	for i, v := range g {
		if v != 0 && v != 1 {
			t.Fatalf("sample %d = %v, want 0/1", i, v)
		}
	}
	// Duty cycle near 50%: the switch spends half its time reflecting.
	var on float64
	for _, v := range g {
		on += v
	}
	duty := on / float64(len(g))
	if math.Abs(duty-0.5) > 0.05 {
		t.Errorf("duty cycle %v, want ~0.5", duty)
	}
	if _, err := m.GammaWaveform([]byte{2}); err == nil {
		t.Error("non-binary chip accepted")
	}
}

func TestGammaWaveformSubcarrierFrequencies(t *testing.T) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	// 64 chips of value 0: energy should sit at F0, not F1.
	chips := make([]byte, 64)
	g, _ := m.GammaWaveform(chips)
	// Skip the preamble, remove DC, convert to complex.
	payload := g[len(p.PreambleSeq)*p.SamplesPerChip():]
	x := make([]complex128, len(payload))
	for i, v := range payload {
		x[i] = complex(v-0.5, 0)
	}
	g0 := dsp.NewGoertzel(p.F0, p.SampleRate)
	g1 := dsp.NewGoertzel(p.F1, p.SampleRate)
	e0, e1 := g0.Energy(x), g1.Energy(x)
	if e0 < 50*e1 {
		t.Errorf("chip-0 energy at F0 %v should dominate F1 %v", e0, e1)
	}
}

func TestModulatorRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.ChipRate = 0
	if _, err := NewModulator(p); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewDemodulator(p); err == nil {
		t.Error("bad params accepted by demod")
	}
	if _, err := NewOOKDemodulator(p); err == nil {
		t.Error("bad params accepted by OOK demod")
	}
}

// loopback modulates chips, scales, rotates and delays the waveform, adds
// noise, and returns the capture a reader would see (no channel model).
func loopback(t *testing.T, m *Modulator, chips []byte, delay int, gain complex128, noisePower float64, seed int64) []complex128 {
	t.Helper()
	g, err := m.GammaWaveform(chips)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	n := delay + len(g) + 256
	y := make([]complex128, n)
	if noisePower > 0 {
		dsp.GaussianNoise(y, noisePower, rng)
	}
	for i, v := range g {
		// The modulated reflection rides on a unit carrier: at baseband the
		// received contribution is gain·γ(t).
		y[delay+i] += gain * complex(v, 0)
	}
	return y
}

func TestAcquireFindsPreamble(t *testing.T) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	d, _ := NewDemodulator(p)
	chips := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	delay := 777
	y := loopback(t, m, chips, delay, complex(0.3, 0.4), 0.001, 7)
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if acq.Start < delay-2 || acq.Start > delay+2 {
		t.Errorf("acquired at %d, want ~%d", acq.Start, delay)
	}
	if acq.Metric < 0.4 {
		t.Errorf("weak metric %v", acq.Metric)
	}
}

func TestAcquireRejectsNoise(t *testing.T) {
	p := DefaultParams()
	d, _ := NewDemodulator(p)
	rng := rand.New(rand.NewSource(3))
	y := dsp.GaussianNoise(make([]complex128, 4096), 1, rng)
	if _, err := d.Acquire(y, 0.4); err == nil {
		t.Error("noise-only capture acquired")
	}
	if _, err := d.Acquire(make([]complex128, 10), 0.2); err == nil {
		t.Error("too-short capture accepted")
	}
}

func TestDemodChipsCleanChannel(t *testing.T) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	d, _ := NewDemodulator(p)
	rng := rand.New(rand.NewSource(5))
	chips := make([]byte, 64)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	y := loopback(t, m, chips, 300, complex(0.2, -0.1), 1e-6, 11)
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := d.DemodChips(y, acq, len(chips))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountChipErrors(HardChips(soft), chips); n != 0 {
		t.Errorf("%d chip errors on a clean channel", n)
	}
	if mm := MeanMargin(soft); mm < 0.5 {
		t.Errorf("mean margin %v too low for clean channel", mm)
	}
	if snr := EstimateSNR(soft); snr < 100 {
		t.Errorf("estimated SNR %v too low for clean channel", snr)
	}
}

func TestDemodChipsErrorsAtLowSNR(t *testing.T) {
	// At very low SNR the detector must degrade toward coin-flipping, not
	// crash or bias.
	p := DefaultParams()
	m, _ := NewModulator(p)
	d, _ := NewDemodulator(p)
	rng := rand.New(rand.NewSource(9))
	chips := make([]byte, 256)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	g, _ := m.GammaWaveform(chips)
	y := dsp.GaussianNoise(make([]complex128, len(g)), 1.0, rng)
	for i, v := range g {
		y[i] += complex(0.005*v, 0) // buried far below the noise
	}
	acq := Acquisition{Start: 0, Metric: 1} // force alignment
	soft, err := d.DemodChips(y, acq, len(chips))
	if err != nil {
		t.Fatal(err)
	}
	errs := CountChipErrors(HardChips(soft), chips)
	if errs < 64 || errs > 192 {
		t.Errorf("error count %d should approach half of %d", errs, len(chips))
	}
}

func TestDemodChipsTooShortCapture(t *testing.T) {
	p := DefaultParams()
	d, _ := NewDemodulator(p)
	y := make([]complex128, 100)
	if _, err := d.DemodChips(y, Acquisition{Start: 0}, 64); err == nil {
		t.Error("short capture accepted")
	}
}

func TestDiversityCombiningImprovesMargin(t *testing.T) {
	// Two equal-power arrivals two chips apart (fully resolvable): summing
	// tone energy across both offsets should raise detection quality
	// versus using only the first arrival.
	p := DefaultParams()
	m, _ := NewModulator(p)
	rng := rand.New(rand.NewSource(15))
	chips := make([]byte, 96)
	for i := range chips {
		chips[i] = byte(rng.Intn(2))
	}
	g, _ := m.GammaWaveform(chips)
	spc := p.SamplesPerChip()
	echoOff := 2 * spc
	n := len(g) + echoOff + 64
	amp := 0.05 // a few dB per bin: single-path detection makes real errors
	acq := Acquisition{Start: 0}

	// Aggregate over several noise realizations so the comparison is about
	// the combiner, not one lucky draw.
	var e1, e2 int
	for trial := 0; trial < 8; trial++ {
		y := dsp.GaussianNoise(make([]complex128, n), 0.01, rand.New(rand.NewSource(int64(100+trial))))
		for i, v := range g {
			y[i] += complex(amp, 0) * complex(v, 0)
			y[i+echoOff] += complex(0, amp) * complex(v, 0)
		}

		d1, _ := NewDemodulator(p)
		soft1, err := d1.DemodChips(y, acq, len(chips))
		if err != nil {
			t.Fatal(err)
		}
		d2, _ := NewDemodulator(p)
		d2.CombineOffsets = []int{echoOff}
		soft2, err := d2.DemodChips(y, acq, len(chips))
		if err != nil {
			t.Fatal(err)
		}
		e1 += CountChipErrors(HardChips(soft1), chips)
		e2 += CountChipErrors(HardChips(soft2), chips)
	}
	if e1 == 0 {
		t.Fatal("test not in the noise-limited regime: single path made no errors")
	}
	if e2 >= e1 {
		t.Errorf("diversity combining did not reduce errors: %d → %d", e1, e2)
	}
}

func TestSuppressRemovesStrongDC(t *testing.T) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	d, _ := NewDemodulator(p)
	chips := []byte{1, 0, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 1}
	y := loopback(t, m, chips, 500, complex(0.1, 0), 1e-4, 2)
	// Add overwhelming carrier leakage (60 dB above the signal).
	for i := range y {
		y[i] += complex(100, 30)
	}
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.2)
	if err != nil {
		t.Fatalf("acquisition failed under leakage: %v", err)
	}
	soft, err := d.DemodChips(y, acq, len(chips))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountChipErrors(HardChips(soft), chips); n != 0 {
		t.Errorf("%d chip errors with SI suppression", n)
	}
}

func TestAdaptiveCancellerConverges(t *testing.T) {
	c := NewAdaptiveCanceller(0.1)
	rng := rand.New(rand.NewSource(13))
	n := 4000
	leak := complex(3, -4)
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := range x {
		x[i] = complex(1+0.1*rng.NormFloat64(), 0)
		y[i] = leak * x[i]
	}
	c.Process(y, x)
	// Residual power in the tail should be crushed.
	tail := dsp.Power(y[n/2:])
	if tail > 1e-6 {
		t.Errorf("residual power %v after convergence", tail)
	}
	if w := c.Weight(); math.Abs(real(w)-3) > 0.01 || math.Abs(imag(w)+4) > 0.01 {
		t.Errorf("weight %v, want (3,-4)", w)
	}
	c.Reset()
	if c.Weight() != 0 {
		t.Error("reset failed")
	}
}

func TestAdaptiveCancellerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad mu should panic")
		}
	}()
	NewAdaptiveCanceller(0)
}

func TestAdaptiveCancellerLengthMismatch(t *testing.T) {
	c := NewAdaptiveCanceller(0.1)
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	c.Process(make([]complex128, 3), make([]complex128, 4))
}

func TestBERModels(t *testing.T) {
	// AWGN NCFSK at 10 dB: ½·exp(−5) ≈ 3.37e-3.
	got := BERNoncoherentFSK(10)
	if math.Abs(got-0.5*math.Exp(-5)) > 1e-12 {
		t.Errorf("NCFSK(10) = %v", got)
	}
	if BERNoncoherentFSK(-1) != 0.5 {
		t.Error("negative Eb/N0 should return 0.5")
	}
	// Rician limits.
	if math.Abs(BERNoncoherentFSKRician(10, 0)-1.0/12.0) > 1e-12 {
		t.Errorf("Rayleigh limit wrong: %v", BERNoncoherentFSKRician(10, 0))
	}
	if math.Abs(BERNoncoherentFSKRician(10, math.Inf(1))-BERNoncoherentFSK(10)) > 1e-15 {
		t.Error("K→∞ should recover AWGN")
	}
	// Large K approaches AWGN.
	if math.Abs(BERNoncoherentFSKRician(10, 1e6)-BERNoncoherentFSK(10)) > 1e-6 {
		t.Error("large K should approach AWGN")
	}
	// Coherent BPSK beats noncoherent FSK.
	if BERCoherentBPSK(10) >= BERNoncoherentFSK(10) {
		t.Error("BPSK bound should be below NCFSK")
	}
}

func TestBERMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 100)
		y := math.Mod(math.Abs(b), 100)
		if x > y {
			x, y = y, x
		}
		return BERNoncoherentFSK(y) <= BERNoncoherentFSK(x)+1e-15 &&
			BERNoncoherentFSKRician(y, 10) <= BERNoncoherentFSKRician(x, 10)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequiredEbN0Inversions(t *testing.T) {
	for _, ber := range []float64{1e-2, 1e-3, 1e-5} {
		e := RequiredEbN0NoncoherentFSK(ber)
		if math.Abs(BERNoncoherentFSK(e)-ber) > 1e-9*ber {
			t.Errorf("AWGN inversion at %v failed", ber)
		}
		er := RequiredEbN0Rician(ber, 10)
		if got := BERNoncoherentFSKRician(er, 10); math.Abs(got-ber) > 1e-6*ber+1e-15 {
			t.Errorf("Rician inversion at %v: got %v", ber, got)
		}
		if er <= e {
			t.Errorf("fading should require more Eb/N0: %v vs %v", er, e)
		}
	}
	if RequiredEbN0NoncoherentFSK(0.6) != 0 {
		t.Error("BER ≥ 0.5 needs no energy")
	}
}

func TestOOKRoundTrip(t *testing.T) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	d, _ := NewOOKDemodulator(p)
	chips := []byte{1, 0, 1, 1, 0, 1, 0, 0, 1, 1}
	tx, err := m.OOKModulate(chips, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Attenuate, rotate, add mild noise.
	rng := rand.New(rand.NewSource(31))
	y := make([]complex128, len(tx))
	for i, v := range tx {
		y[i] = complex(0, 0.2)*v + complex(rng.NormFloat64()*0.005, rng.NormFloat64()*0.005)
	}
	got, err := d.DemodChips(y, 0, len(chips))
	if err != nil {
		t.Fatal(err)
	}
	if n := CountChipErrors(got, chips); n != 0 {
		t.Errorf("%d OOK chip errors", n)
	}
}

func TestOOKPartialDepth(t *testing.T) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	tx, err := m.OOKModulate([]byte{0, 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if real(tx[0]) != 0.5 || real(tx[len(tx)-1]) != 1 {
		t.Errorf("depth 0.5 levels: %v / %v", tx[0], tx[len(tx)-1])
	}
	if _, err := m.OOKModulate([]byte{1}, 0); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := m.OOKModulate([]byte{3}, 1); err == nil {
		t.Error("non-binary chip accepted")
	}
}

func TestOOKDetectStart(t *testing.T) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	d, _ := NewOOKDemodulator(p)
	chips := []byte{1, 1, 0, 1}
	tx, _ := m.OOKModulate(chips, 1.0)
	pad := 400
	y := make([]complex128, pad+len(tx))
	rng := rand.New(rand.NewSource(17))
	for i := range y {
		y[i] = complex(rng.NormFloat64()*0.001, rng.NormFloat64()*0.001)
	}
	for i, v := range tx {
		y[pad+i] += complex(0.3, 0) * v
	}
	start, err := d.DetectStart(y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if start < pad-p.SamplesPerChip() || start > pad+p.SamplesPerChip() {
		t.Errorf("detected start %d, want ~%d", start, pad)
	}
	// Flat noise: no rise.
	flat := make([]complex128, 2048)
	dsp.GaussianNoise(flat, 0.001, rng)
	if _, err := d.DetectStart(flat, 5); err == nil {
		t.Error("flat capture should not trigger")
	}
	if _, err := d.DetectStart(make([]complex128, 3), 5); err == nil {
		t.Error("tiny capture should error")
	}
}

func TestOOKDemodBounds(t *testing.T) {
	p := DefaultParams()
	d, _ := NewOOKDemodulator(p)
	if _, err := d.DemodChips(make([]complex128, 10), 0, 5); err == nil {
		t.Error("short capture accepted")
	}
	if _, err := d.DemodChips(make([]complex128, 100), -1, 1); err == nil {
		t.Error("negative start accepted")
	}
}

func TestCountChipErrorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	CountChipErrors([]byte{1}, []byte{1, 0})
}
