package phy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vab/internal/dsp"
)

func TestMFSKParamsValidate(t *testing.T) {
	p := DefaultMFSKParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.BitsPerSymbol() != 2 || p.BitRate() != 1000 {
		t.Errorf("4-FSK at 500 cps: %d bits/sym, %v bps", p.BitsPerSymbol(), p.BitRate())
	}
	bad := []func(*MFSKParams){
		func(p *MFSKParams) { p.SampleRate = 0 },
		func(p *MFSKParams) { p.Tones = p.Tones[:3] },             // not power of two
		func(p *MFSKParams) { p.Tones = []float64{500} },          // M < 2
		func(p *MFSKParams) { p.Tones = []float64{500, 750} },     // non-multiple
		func(p *MFSKParams) { p.Tones = []float64{500, 500} },     // duplicate
		func(p *MFSKParams) { p.Tones = []float64{500, 9000} },    // above Nyquist
		func(p *MFSKParams) { p.PreambleSeq = p.PreambleSeq[:3] }, // short preamble
		func(p *MFSKParams) { p.ChipRate = 499 },                  // non-integer spc
	}
	for i, mutate := range bad {
		q := DefaultMFSKParams()
		mutate(&q)
		if err := q.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestSymbolsBitsRoundTripProperty(t *testing.T) {
	f := func(data []byte, kRaw uint8) bool {
		k := int(kRaw)%3 + 1 // 1..3 bits per symbol
		bits := make([]byte, len(data)/k*k)
		for i := range bits {
			bits[i] = data[i] & 1
		}
		syms, err := SymbolsFromBits(bits, k)
		if err != nil {
			return false
		}
		back, err := BitsFromSymbols(syms, k)
		return err == nil && bytes.Equal(back, bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolsBitsErrors(t *testing.T) {
	if _, err := SymbolsFromBits([]byte{1, 0, 1}, 2); err == nil {
		t.Error("non-divisible bit count accepted")
	}
	if _, err := SymbolsFromBits([]byte{2, 0}, 2); err == nil {
		t.Error("non-binary bit accepted")
	}
	if _, err := SymbolsFromBits(nil, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := BitsFromSymbols([]byte{4}, 2); err == nil {
		t.Error("oversized symbol accepted")
	}
	if _, err := BitsFromSymbols(nil, 9); err == nil {
		t.Error("k=9 accepted")
	}
}

func TestMFSKGammaStructure(t *testing.T) {
	p := DefaultMFSKParams()
	m, err := NewMFSKModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	syms := []byte{0, 1, 2, 3}
	g, err := m.GammaWaveform(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != m.BurstSamples(len(syms)) {
		t.Fatalf("length %d want %d", len(g), m.BurstSamples(len(syms)))
	}
	for _, v := range g {
		if v != 0 && v != 1 {
			t.Fatal("non-binary switch state")
		}
	}
	if _, err := m.GammaWaveform([]byte{4}); err == nil {
		t.Error("out-of-range symbol accepted")
	}
}

// mfskLoopback builds a capture with the modulated burst at an offset.
func mfskLoopback(t *testing.T, p MFSKParams, syms []byte, delay int, gain complex128, noise float64, seed int64) []complex128 {
	t.Helper()
	m, err := NewMFSKModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.GammaWaveform(syms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	y := dsp.GaussianNoise(make([]complex128, delay+len(g)+256), noise, rng)
	for i, v := range g {
		y[delay+i] += gain * complex(v, 0)
	}
	return y
}

func TestMFSKEndToEndClean(t *testing.T) {
	p := DefaultMFSKParams()
	d, err := NewMFSKDemodulator(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	syms := make([]byte, 120)
	for i := range syms {
		syms[i] = byte(rng.Intn(4))
	}
	y := mfskLoopback(t, p, syms, 444, complex(0.2, 0.3), 1e-6, 5)
	d.Suppress(y)
	acq, err := d.Acquire(y, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if acq.Start < 442 || acq.Start > 446 {
		t.Errorf("acquired at %d, want ~444", acq.Start)
	}
	soft, err := d.DemodSymbols(y, acq, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	got := HardSymbols(soft)
	errs := 0
	for i := range got {
		if got[i] != syms[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d symbol errors on a clean channel", errs)
	}
	// Margins should be decisive.
	for i, s := range soft[:10] {
		if s.Margin() < 0.3 {
			t.Errorf("weak margin %v at %d", s.Margin(), i)
		}
	}
}

func TestMFSKDegradesGracefully(t *testing.T) {
	p := DefaultMFSKParams()
	d, _ := NewMFSKDemodulator(p)
	syms := make([]byte, 200)
	rng := rand.New(rand.NewSource(3))
	for i := range syms {
		syms[i] = byte(rng.Intn(4))
	}
	y := mfskLoopback(t, p, syms, 0, complex(0.003, 0), 1.0, 7)
	acq := Acquisition{Start: 0}
	soft, err := d.DemodSymbols(y, acq, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, s := range HardSymbols(soft) {
		if s != syms[i] {
			errs++
		}
	}
	// Buried signal: error rate should approach 3/4 (random guess among 4).
	if errs < 100 || errs > 190 {
		t.Errorf("symbol errors %d/200 not near chance", errs)
	}
}

func TestMFSKCaptureErrors(t *testing.T) {
	p := DefaultMFSKParams()
	d, _ := NewMFSKDemodulator(p)
	if _, err := d.Acquire(make([]complex128, 10), 0.2); err == nil {
		t.Error("short capture acquired")
	}
	if _, err := d.DemodSymbols(make([]complex128, 100), Acquisition{}, 50); err == nil {
		t.Error("short demod accepted")
	}
	bad := DefaultMFSKParams()
	bad.ChipRate = 0
	if _, err := NewMFSKModulator(bad); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewMFSKDemodulator(bad); err == nil {
		t.Error("bad params accepted")
	}
}

func TestBERNoncoherentMFSKLimits(t *testing.T) {
	// M=2 must reduce to the binary formula.
	for _, snr := range []float64{1, 5, 20} {
		want := BERNoncoherentFSK(snr)
		if got := BERNoncoherentMFSK(snr, 2); math.Abs(got-want) > 1e-12 {
			t.Errorf("M=2 at %v: %v vs %v", snr, got, want)
		}
	}
	// At zero SNR, Pb = M/(2(M-1))·Ps with Ps = (M-1)/M → Pb = 1/2.
	if got := BERNoncoherentMFSK(0, 4); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Pb(0 SNR, M=4) = %v, want 0.5", got)
	}
	// Monotone decreasing in SNR.
	prev := 1.0
	for snr := 0.5; snr < 60; snr *= 1.5 {
		v := BERNoncoherentMFSK(snr, 4)
		if v > prev+1e-12 {
			t.Fatalf("not monotone at %v", snr)
		}
		prev = v
	}
	// At equal Es/N0, larger M has higher symbol error, but per-bit (same
	// Eb/N0 = Es/(N0·k)) 4-FSK beats 2-FSK — the classic orthogonal-FSK
	// power-efficiency gain.
	eb := 12.0
	b2 := BERNoncoherentFSK(eb)
	b4 := BERNoncoherentMFSK(2*eb, 4) // Es = 2·Eb for k=2
	if b4 >= b2 {
		t.Errorf("4-FSK at equal Eb/N0 should beat 2-FSK: %v vs %v", b4, b2)
	}
}

func TestMFSKMonteCarloMatchesAnalytic(t *testing.T) {
	// Waveform-level 4-FSK symbol detection vs the closed form, on AWGN.
	p := DefaultMFSKParams()
	d, _ := NewMFSKDemodulator(p)
	rng := rand.New(rand.NewSource(11))
	spc := p.SamplesPerChip()

	nSym := 6000
	syms := make([]byte, nSym)
	for i := range syms {
		syms[i] = byte(rng.Intn(4))
	}
	m, _ := NewMFSKModulator(p)
	g, _ := m.GammaWaveform(syms)
	// Choose amplitude for a target Es/N0 around 9 dB: tone amplitude of
	// the switched waveform's fundamental is a/π per sideband... measure
	// empirically instead: signal bin energy for amplitude A is
	// (spc·A/π)²; noise bin energy is spc·N.
	noiseP := 0.01
	amp := 0.04
	y := dsp.GaussianNoise(make([]complex128, len(g)), noiseP, rng)
	for i, v := range g {
		y[i] += complex(amp*v, 0)
	}
	soft, err := d.DemodSymbols(y, Acquisition{Start: 0}, nSym)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, s := range HardSymbols(soft) {
		if s != syms[i] {
			errs++
		}
	}
	psMC := float64(errs) / float64(nSym)

	// Analytic: Es/N0 = (spc·amp/π)² / (spc·noiseP).
	esn0 := math.Pow(float64(spc)*amp/math.Pi, 2) / (float64(spc) * noiseP)
	psModel := BERNoncoherentMFSK(esn0, 4) * 2 * 3 / 4 // invert Pb→Ps relation
	if psMC < psModel/2.5 || psMC > psModel*2.5 {
		t.Errorf("MC Ps %.4g vs model Ps %.4g (Es/N0 %.1f dB)", psMC, psModel, 10*math.Log10(esn0))
	}
}
