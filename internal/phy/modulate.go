package phy

import (
	"fmt"
	"math"
)

// Modulator produces the node-side reflection waveform γ(t) and the
// reader-side transmit envelopes.
type Modulator struct {
	p Params
}

// NewModulator validates the numerology and returns a modulator.
func NewModulator(p Params) (*Modulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Modulator{p: p}, nil
}

// Params returns the modulator's numerology.
func (m *Modulator) Params() Params { return m.p }

// GammaWaveform renders preamble + chips into the node's reflection toggle
// waveform: values 0 and 1 (the two switch states), one sample per baseband
// sample. During a chip of value b, the switch toggles as a square wave at
// subcarrier frequency f_b. Phase is continuous across chips so the
// mechanical switch never sees a fractional cycle discontinuity.
func (m *Modulator) GammaWaveform(chips []byte) ([]float64, error) {
	for i, c := range chips {
		if c > 1 {
			return nil, fmt.Errorf("phy: chip %d has non-binary value %d", i, c)
		}
	}
	all := m.withPreamble(chips)
	if m.p.ClockPPM != 0 {
		return m.skewedGamma(all), nil
	}
	spc := m.p.SamplesPerChip()
	out := make([]float64, len(all)*spc)
	fs := m.p.SampleRate
	phase := 0.0
	idx := 0
	for _, c := range all {
		f := m.p.chipFreq(c)
		for s := 0; s < spc; s++ {
			if math.Sin(phase) >= 0 {
				out[idx] = 1
			}
			idx++
			phase += 2 * math.Pi * f / fs
		}
	}
	return out, nil
}

// skewedGamma renders the burst as produced by a node whose oscillator runs
// fast or slow by ClockPPM: node time advances (1+δ) per receiver sample,
// so chip boundaries drift and the subcarrier tones shift by the same
// relative amount. The output length shrinks (fast clock) or grows (slow).
func (m *Modulator) skewedGamma(all []byte) []float64 {
	delta := 1 + m.p.ClockPPM*1e-6
	fs := m.p.SampleRate
	chipDur := 1 / m.p.ChipRate // in node time
	totalNode := float64(len(all)) * chipDur
	n := int(math.Ceil(totalNode / delta * fs))
	out := make([]float64, n)
	phase := 0.0
	for i := 0; i < n; i++ {
		tau := float64(i) / fs * delta // node time
		chip := int(tau / chipDur)
		if chip >= len(all) {
			break
		}
		f := m.p.chipFreq(all[chip])
		if math.Sin(phase) >= 0 {
			out[i] = 1
		}
		phase += 2 * math.Pi * f * delta / fs
	}
	return out
}

// withPreamble maps the ±1 preamble sequence to chips and prepends it.
func (m *Modulator) withPreamble(chips []byte) []byte {
	all := make([]byte, 0, len(m.p.PreambleSeq)+len(chips))
	for _, v := range m.p.PreambleSeq {
		if v > 0 {
			all = append(all, 1)
		} else {
			all = append(all, 0)
		}
	}
	return append(all, chips...)
}

// BurstSamples returns the waveform length in samples of a burst carrying n
// payload chips (preamble included).
func (m *Modulator) BurstSamples(n int) int {
	return (len(m.p.PreambleSeq) + n) * m.p.SamplesPerChip()
}

// CarrierEnvelope returns a constant unit envelope of n samples: the
// reader's continuous-wave interrogation signal at complex baseband.
func CarrierEnvelope(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

// OOKModulate on-off-keys a unit carrier envelope with downlink chips at
// the modulator's chip rate. depth in (0, 1] sets the modulation depth
// (1 = full on/off); partial depth lets the node keep harvesting energy
// during "off" chips.
func (m *Modulator) OOKModulate(chips []byte, depth float64) ([]complex128, error) {
	if depth <= 0 || depth > 1 {
		return nil, fmt.Errorf("phy: OOK depth %.3g outside (0, 1]", depth)
	}
	for i, c := range chips {
		if c > 1 {
			return nil, fmt.Errorf("phy: chip %d has non-binary value %d", i, c)
		}
	}
	spc := m.p.SamplesPerChip()
	out := make([]complex128, len(chips)*spc)
	lo := complex(1-depth, 0)
	for i, c := range chips {
		v := lo
		if c == 1 {
			v = 1
		}
		for s := 0; s < spc; s++ {
			out[i*spc+s] = v
		}
	}
	return out, nil
}
