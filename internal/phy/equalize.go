package phy

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Decision-feedback equalization for the backscatter uplink. Shallow
// waveguides throw echoes a chip or more late (a sub-critical bottom bounce
// arrives with near-unity reflection); within a Goertzel window such an
// echo deposits the *previous* chips' tone energy and caps the SIR no
// matter how strong the signal is. The equalizer runs one feedback round:
//
//  1. demodulate and reconstruct the burst's waveform from the decisions;
//  2. jointly least-squares fit the channel's complex gain at a grid of
//     candidate delays (shifted copies of the reconstruction as
//     regressors), subtract every late path from the capture, and
//     demodulate again on the cleaned signal.
//
// (The loop below supports more rounds, but without a ground-truth quality
// signal extra rounds can wander off a good answer; one round measured
// best.)
//
// The joint fit matters: shifted copies of an FSK burst are mutually
// correlated (half the chips repeat a frequency), so independent
// correlations would hallucinate echoes; solving the normal equations
// attributes the energy correctly.

// EchoEstimate is one late-path measurement.
type EchoEstimate struct {
	Offset int        // samples after the main arrival
	Gain   complex128 // complex gain relative to the main path
}

// reconstruct renders the waveform the capture actually contains for a
// unit-gain path carrying the given payload chips: the modulator's 0/1
// square toggle (preamble plus chips, phase-continuous, harmonics and all)
// passed through the same comb notch the receiver applied to the capture.
// Matching the true waveform matters for the least-squares fit — a
// fundamental-only template leaves the square wave's harmonic energy to be
// misattributed to phantom echoes.
func (d *Demodulator) reconstruct(chips []byte) []complex128 {
	spc := d.p.SamplesPerChip()
	out := make([]complex128, 0, (len(d.p.PreambleSeq)+len(chips))*spc)
	phase := 0.0
	emit := func(f float64) {
		for s := 0; s < spc; s++ {
			v := 0.0
			if math.Sin(phase) >= 0 {
				v = 1
			}
			out = append(out, complex(v, 0))
			phase += 2 * math.Pi * f / d.p.SampleRate
		}
	}
	for _, v := range d.p.PreambleSeq {
		c := byte(0)
		if v > 0 {
			c = 1
		}
		emit(d.p.chipFreq(c))
	}
	for _, c := range chips {
		emit(d.p.chipFreq(c))
	}
	return d.Suppress(out)
}

// estimatePaths solves the least-squares channel fit: y ≈ Σ_k g_k·wave
// shifted by offsets[k], over the burst extent. Returns the complex gains
// aligned with offsets.
func estimatePaths(y, wave []complex128, start int, offsets []int) ([]complex128, error) {
	k := len(offsets)
	col := func(i, t int) complex128 {
		// Sample t of regressor i (wave shifted by offsets[i]).
		j := t - offsets[i]
		if j < 0 || j >= len(wave) {
			return 0
		}
		return wave[j]
	}
	// Fit extent: the burst plus the largest offset.
	maxOff := 0
	for _, o := range offsets {
		if o > maxOff {
			maxOff = o
		}
	}
	n := len(wave) + maxOff
	if start < 0 || start+n > len(y) {
		n = len(y) - start
		if n <= len(wave)/2 {
			return nil, fmt.Errorf("phy: capture too short for channel fit")
		}
	}
	// Normal equations A^H A g = A^H y.
	ata := make([][]complex128, k)
	aty := make([]complex128, k)
	for i := range ata {
		ata[i] = make([]complex128, k)
	}
	for t := 0; t < n; t++ {
		yt := y[start+t]
		for i := 0; i < k; i++ {
			ci := col(i, t)
			if ci == 0 {
				continue
			}
			cci := cmplx.Conj(ci)
			aty[i] += cci * yt
			for j := i; j < k; j++ {
				ata[i][j] += cci * col(j, t)
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = cmplx.Conj(ata[j][i])
		}
	}
	g, err := solveHermitian(ata, aty)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// solveHermitian solves A·x = b for a small dense complex system by
// Gaussian elimination with partial pivoting.
func solveHermitian(a [][]complex128, b []complex128) ([]complex128, error) {
	n := len(a)
	// Work on copies.
	m := make([][]complex128, n)
	for i := range m {
		m[i] = append([]complex128(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for c := 0; c < n; c++ {
		// Pivot.
		p := c
		for r := c + 1; r < n; r++ {
			if cmplx.Abs(m[r][c]) > cmplx.Abs(m[p][c]) {
				p = r
			}
		}
		if cmplx.Abs(m[p][c]) < 1e-18 {
			return nil, fmt.Errorf("phy: singular channel-fit system")
		}
		m[c], m[p] = m[p], m[c]
		piv := m[c][c]
		for j := c; j <= n; j++ {
			m[c][j] /= piv
		}
		for r := 0; r < n; r++ {
			if r == c || m[r][c] == 0 {
				continue
			}
			f := m[r][c]
			for j := c; j <= n; j++ {
				m[r][j] -= f * m[c][j]
			}
		}
	}
	x := make([]complex128, n)
	for i := range x {
		x[i] = m[i][n]
	}
	return x, nil
}

// EqualizeAndDemod runs the two-pass decision-feedback equalizer: a plain
// demodulation pass, a joint least-squares channel fit over half-chip
// delay candidates out to maxEchoChips, ISI subtraction, and a second
// demodulation on the cleaned capture. It returns the second-pass
// decisions and the cancelled echoes (empty means the channel needed no
// equalization and the first pass is returned unchanged).
func (d *Demodulator) EqualizeAndDemod(y []complex128, acq Acquisition, n, maxEchoChips int) ([]SoftChip, []EchoEstimate, error) {
	soft, err := d.DemodChips(y, acq, n)
	if err != nil {
		return nil, nil, err
	}
	spc := d.p.SamplesPerChip()
	// Delay grid: half-chip resolution. Finer grids make the shifted
	// regressors too mutually correlated (an ill-conditioned fit injects
	// more error than the residual sub-chip mismatch it removes).
	offsets := []int{0}
	for off := spc / 2; off <= maxEchoChips*spc; off += spc / 2 {
		offsets = append(offsets, off)
	}

	var echoes []EchoEstimate
	const iterations = 1
	for iter := 0; iter < iterations; iter++ {
		wave := d.reconstruct(HardChips(soft))
		gains, err := estimatePaths(y, wave, acq.Start, offsets)
		if err != nil {
			// Estimation failure is not fatal: keep the latest decisions.
			return soft, echoes, nil
		}
		mainAmp := cmplx.Abs(gains[0])
		if mainAmp == 0 {
			return soft, echoes, nil
		}
		echoes = echoes[:0]
		for i := 1; i < len(offsets); i++ {
			if cmplx.Abs(gains[i]) > 0.15*mainAmp {
				echoes = append(echoes, EchoEstimate{
					Offset: offsets[i],
					Gain:   gains[i] / gains[0],
				})
			}
		}
		if len(echoes) == 0 {
			return soft, nil, nil
		}
		clean := append([]complex128(nil), y...)
		for i := 1; i < len(offsets); i++ {
			if cmplx.Abs(gains[i]) <= 0.15*mainAmp {
				continue
			}
			lo := acq.Start + offsets[i]
			for t, w := range wave {
				j := lo + t
				if j < 0 {
					continue
				}
				if j >= len(clean) {
					break
				}
				clean[j] -= gains[i] * w
			}
		}
		// Re-demodulate without echo combining: the late paths are
		// cancelled, so only the main-arrival window carries clean signal.
		acq2 := acq
		acq2.Peaks = nil
		next, err := d.DemodChips(clean, acq2, n)
		if err != nil {
			return nil, nil, err
		}
		same := true
		for i := range next {
			if next[i].Value != soft[i].Value {
				same = false
				break
			}
		}
		soft = next
		if same {
			break // converged
		}
	}
	return soft, echoes, nil
}
