// Package vab's root benchmark harness regenerates every evaluation
// artifact of the reproduction (one benchmark per paper table/figure,
// E1…E10), runs the design-choice ablations called out in DESIGN.md, and
// measures the hot DSP paths. Custom metrics attached to each benchmark
// carry the headline numbers (ranges in meters, ratios, SNRs) so a bench
// run doubles as a results summary:
//
//	go test -bench=. -benchmem
package vab

import (
	"math"
	"math/rand"
	"testing"

	"vab/internal/baseline"
	"vab/internal/channel"
	"vab/internal/core"
	"vab/internal/dsp"
	"vab/internal/experiments"
	"vab/internal/link"
	"vab/internal/mac"
	"vab/internal/ocean"
	"vab/internal/phy"
	"vab/internal/reader"
	"vab/internal/sim"
)

// benchExperiment runs one experiment per iteration and reports its
// headline metrics.
func benchExperiment(b *testing.B, id string, metrics []string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Options{Trials: 100, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// --- One benchmark per reproduced table/figure (see DESIGN.md index). ---

func BenchmarkE1RangeRiver(b *testing.B) {
	benchExperiment(b, "E1", []string{"range_at_target"})
}

func BenchmarkE2SNRComparison(b *testing.B) {
	benchExperiment(b, "E2", []string{"vab_minus_pab_db"})
}

func BenchmarkE3HeadToHead(b *testing.B) {
	benchExperiment(b, "E3", []string{"range_ratio", "vab_range_m", "pab_range_m"})
}

func BenchmarkE4Orientation(b *testing.B) {
	benchExperiment(b, "E4", []string{"vab_min_range_m"})
}

func BenchmarkE5ElementScaling(b *testing.B) {
	benchExperiment(b, "E5", []string{"range_gain_16_vs_1"})
}

func BenchmarkE6Ocean(b *testing.B) {
	benchExperiment(b, "E6", []string{"ocean_range_at_target"})
}

func BenchmarkE7Throughput(b *testing.B) {
	benchExperiment(b, "E7", []string{"range_at_500cps"})
}

func BenchmarkE8PowerBudget(b *testing.B) {
	benchExperiment(b, "E8", []string{"harvest_breakeven_m", "battery_years"})
}

func BenchmarkE9Matching(b *testing.B) {
	benchExperiment(b, "E9", []string{"matched_depth_gain_db", "match_bw_hz"})
}

func BenchmarkE10Campaign(b *testing.B) {
	benchExperiment(b, "E10", []string{"total_trials"})
}

// BenchmarkE10CampaignSerial pins the pre-parallelization baseline: the
// same campaign with the worker pool forced to width 1. The ratio of this
// to BenchmarkE10Campaign is the measured speedup of the parallel
// Monte-Carlo harness (≈ the core count on a multi-core runner; outputs
// are bit-identical either way).
func BenchmarkE10CampaignSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run("E10", experiments.Options{
			Trials: 100, Seed: int64(i + 1), Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out. ---

// BenchmarkAblationDiversity compares achievable range with and without
// multipath diversity combining at the receiver.
func BenchmarkAblationDiversity(b *testing.B) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		bw := core.NewLinkBudget(env, d)
		with = bw.MaxRange(1e-3, 5000)
		bo := core.NewLinkBudget(env, d)
		bo.DiversityBranches = 1
		bo.DiversityGainDB = 0
		without = bo.MaxRange(1e-3, 5000)
	}
	b.ReportMetric(with, "range_with_div_m")
	b.ReportMetric(without, "range_no_div_m")
}

// BenchmarkAblationMatching compares achievable range with matched
// switching versus the unmatched prior-art switch states on the same
// Van Atta array.
func BenchmarkAblationMatching(b *testing.B) {
	env := ocean.CharlesRiver()
	matched, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	unmatched, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	unmatched.OffLoad = complex(30, 0) // bare-switch parasitic off state
	var rm, ru float64
	for i := 0; i < b.N; i++ {
		rm = core.NewLinkBudget(env, matched).MaxRange(1e-3, 5000)
		ru = core.NewLinkBudget(env, unmatched).MaxRange(1e-3, 5000)
	}
	b.ReportMetric(rm, "range_matched_m")
	b.ReportMetric(ru, "range_unmatched_m")
}

// BenchmarkAblationSubcarrier compares the subcarrier-FSK architecture
// against carrier-band signaling (the prior art's choice) on the same
// hardware: the residual self-interference penalty is the difference.
func BenchmarkAblationSubcarrier(b *testing.B) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	var sub, carrier float64
	for i := 0; i < b.N; i++ {
		bs := core.NewLinkBudget(env, d)
		sub = bs.MaxRange(1e-3, 5000)
		bc := core.NewLinkBudget(env, d)
		bc.SIPenaltyDB = core.CarrierBandSIPenaltyDB
		carrier = bc.MaxRange(1e-3, 5000)
	}
	b.ReportMetric(sub, "range_subcarrier_m")
	b.ReportMetric(carrier, "range_carrierband_m")
}

// BenchmarkAblationLineCode compares the frame chip overhead of the three
// line codes at equal FEC, the cost axis of the DC-free coding choice.
func BenchmarkAblationLineCode(b *testing.B) {
	f := &link.Frame{Type: link.FrameData, Addr: 1, Payload: make([]byte, 8)}
	codecs := map[string]link.Codec{
		"nrz":        {Code: link.NRZ, FEC: true, InterleaveDepth: 7},
		"manchester": {Code: link.Manchester, FEC: true, InterleaveDepth: 7},
		"fm0":        {Code: link.FM0, FEC: true, InterleaveDepth: 7},
	}
	for i := 0; i < b.N; i++ {
		for _, c := range codecs {
			if _, err := c.EncodeFrame(f); err != nil {
				b.Fatal(err)
			}
		}
	}
	for name, c := range codecs {
		b.ReportMetric(float64(c.ChipLength(8)), name+"_chips")
	}
}

// BenchmarkAblationFidelityTiers cross-checks the analytic tier against a
// Monte-Carlo cell at the 300 m operating point (model agreement ratio).
func BenchmarkAblationFidelityTiers(b *testing.B) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	bud := core.NewLinkBudget(env, d)
	var mc sim.CellResult
	for i := 0; i < b.N; i++ {
		var err error
		mc, err = sim.RunCell(sim.TrialConfig{
			Budget: bud, RangeM: 300, Trials: 2000, ChipsPerTrial: 392, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mc.BER, "mc_ber")
	b.ReportMetric(bud.BER(300), "model_ber")
}

// --- Waveform-pipeline benches: the per-round cost of the full system. ---

func BenchmarkSystemRound(b *testing.B) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewSystem(core.SystemConfig{
		Env: env, Design: d, Range: 60, NodeAddr: 1, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.WakeNode(3600)
	ok := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WakeNode(30)
		rep, err := s.RunRound()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Rx.OK() {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "decode_rate")
}

// benchFleetCycle measures one full polling cycle of a 64-node deployment
// at the given poll-pool width. The Serial/Parallel pair quantifies the
// wave scheduler's speedup on whatever machine runs the suite — seeded
// cycle output is bit-identical at every width, so the pair measures pure
// scheduling, not behavioral drift.
func benchFleetCycle(b *testing.B, workers int) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	placements := make([]core.NodePlacement, 64)
	for i := range placements {
		placements[i] = core.NodePlacement{
			Addr:        byte(i + 1),
			Range:       40 + float64(i), // 40 m … 103 m: deliverable, so wave width stays 64
			Orientation: 0.1 * float64(i%7),
		}
	}
	f, err := core.NewFleet(
		core.SystemConfig{Env: env, Design: d, Range: 1, Seed: 99},
		placements, mac.DefaultPollPolicy(),
	)
	if err != nil {
		b.Fatal(err)
	}
	f.SetWorkers(workers)
	f.Deploy(3600)
	if _, _, err := f.RunCycle(); err != nil { // warm plans and scratch
		b.Fatal(err)
	}
	var polled, delivered int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rep, err := f.RunCycle()
		if err != nil {
			b.Fatal(err)
		}
		polled += rep.Polled
		delivered += rep.Delivered
	}
	b.ReportMetric(float64(delivered)/float64(polled), "delivery_rate")
	b.ReportMetric(float64(polled)/float64(b.N), "nodes_per_cycle")
}

func BenchmarkFleetCycleSerial(b *testing.B)   { benchFleetCycle(b, 1) }
func BenchmarkFleetCycleParallel(b *testing.B) { benchFleetCycle(b, 0) }

func BenchmarkChannelRoundTrip(b *testing.B) {
	l, err := channel.New(channel.Config{
		Env: ocean.CharlesRiver(), CarrierHz: 18.5e3, SampleRate: 16e3,
		ReaderDepth: 1.6, NodeDepth: 2.4, Range: 100, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := 16384
	tx := phy.CarrierEnvelope(n)
	gamma := make([]complex128, n)
	for i := range gamma {
		gamma[i] = complex(float64(i%2), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RoundTrip(tx, gamma, complex(0.1, 0)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(n * 16))
}

// BenchmarkChannelRoundTripInto is the steady-state form of
// BenchmarkChannelRoundTrip: same link and waveforms, writing into a
// reused capture buffer. The delta between the two is what the
// allocation-free pipeline buys per round.
func BenchmarkChannelRoundTripInto(b *testing.B) {
	l, err := channel.New(channel.Config{
		Env: ocean.CharlesRiver(), CarrierHz: 18.5e3, SampleRate: 16e3,
		ReaderDepth: 1.6, NodeDepth: 2.4, Range: 100, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := 16384
	tx := phy.CarrierEnvelope(n)
	gamma := make([]complex128, n)
	for i := range gamma {
		gamma[i] = complex(float64(i%2), 0)
	}
	dst := make([]complex128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.RoundTripInto(dst, tx, gamma, complex(0.1, 0)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(n * 16))
}

// BenchmarkLinkRebuild measures the incremental per-round geometry refresh
// (sway) against BenchmarkLinkNew, the from-scratch construction it
// replaced in the round pipeline.
func BenchmarkLinkRebuild(b *testing.B) {
	cfg := channel.Config{
		Env: ocean.CharlesRiver(), CarrierHz: 18.5e3, SampleRate: 16e3,
		ReaderDepth: 1.6, NodeDepth: 2.4, Range: 100,
		SelfInterferenceDB: -30, ColoredNoise: true, Seed: 1,
	}
	l, err := channel.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g := channel.Geometry{ReaderDepth: 1.61, NodeDepth: 2.39, Range: 100.02}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Rebuild(g, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkNew(b *testing.B) {
	cfg := channel.Config{
		Env: ocean.CharlesRiver(), CarrierHz: 18.5e3, SampleRate: 16e3,
		ReaderDepth: 1.6, NodeDepth: 2.4, Range: 100,
		SelfInterferenceDB: -30, ColoredNoise: true, Seed: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := channel.New(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUplinkNoise isolates the uplink half — fading, leakage and
// Wenz-shaped noise on the workspace scratch — the per-round cost of the
// addNoise path.
func BenchmarkUplinkNoise(b *testing.B) {
	l, err := channel.New(channel.Config{
		Env: ocean.CharlesRiver(), CarrierHz: 18.5e3, SampleRate: 16e3,
		ReaderDepth: 1.6, NodeDepth: 2.4, Range: 100,
		SelfInterferenceDB: -30, ColoredNoise: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := 16384
	x := phy.CarrierEnvelope(n)
	dst := make([]complex128, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.UplinkInto(dst, x, x)
	}
	b.SetBytes(int64(n * 16))
}

// benchTDL measures one TDL engine at a given tap count over a 16 k-sample
// block — the data behind the time/frequency crossover documented on
// channel.Config.FrequencyDomainTDL.
func benchTDL(b *testing.B, nTaps int, freq bool) {
	rng := rand.New(rand.NewSource(3))
	taps := make([]channel.Tap, nTaps)
	for i := range taps {
		taps[i] = channel.Tap{
			DelaySamples: 500 + rng.Float64()*400,
			Gain:         complex(rng.NormFloat64(), rng.NormFloat64()),
		}
	}
	n := 16384
	x := dsp.GaussianNoise(make([]complex128, n), 1, rng)
	dst := make([]complex128, n)
	tdl := channel.NewTDL(taps, freq)
	tdl.Apply(dst, x) // warm scratch + FFT plans
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tdl.Apply(dst, x)
	}
	b.SetBytes(int64(n * 16))
}

func BenchmarkTDLTime4(b *testing.B)  { benchTDL(b, 4, false) }
func BenchmarkTDLFreq4(b *testing.B)  { benchTDL(b, 4, true) }
func BenchmarkTDLTime16(b *testing.B) { benchTDL(b, 16, false) }
func BenchmarkTDLFreq16(b *testing.B) { benchTDL(b, 16, true) }
func BenchmarkTDLTime64(b *testing.B) { benchTDL(b, 64, false) }
func BenchmarkTDLFreq64(b *testing.B) { benchTDL(b, 64, true) }

func BenchmarkReaderAcquire(b *testing.B) {
	p := phy.DefaultParams()
	m, err := phy.NewModulator(p)
	if err != nil {
		b.Fatal(err)
	}
	dem, err := phy.NewDemodulator(p)
	if err != nil {
		b.Fatal(err)
	}
	chips := make([]byte, 64)
	g, err := m.GammaWaveform(chips)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	y := dsp.GaussianNoise(make([]complex128, len(g)+2000), 0.01, rng)
	for i, v := range g {
		y[500+i] += complex(0.2*v, 0)
	}
	dem.Suppress(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dem.Acquire(y, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- DSP micro-benches. ---

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := dsp.GaussianNoise(make([]complex128, 1024), 1, rng)
	out := make([]complex128, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFTInto(out, x)
	}
	b.SetBytes(1024 * 16)
}

func BenchmarkFFTBluestein1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := dsp.GaussianNoise(make([]complex128, 1000), 1, rng)
	out := make([]complex128, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFTInto(out, x)
	}
}

func BenchmarkRFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.RFFT(x)
	}
	b.SetBytes(1024 * 8)
}

func BenchmarkGoertzelChip(b *testing.B) {
	g := dsp.NewGoertzel(500, 16000)
	rng := rand.New(rand.NewSource(1))
	x := dsp.GaussianNoise(make([]complex128, 32), 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Energy(x)
	}
}

func BenchmarkFIRFilter(b *testing.B) {
	lp, err := dsp.LowpassFIR(63, 2000, 16000, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := dsp.GaussianNoise(make([]complex128, 4096), 1, rng)
	out := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.ProcessInto(out, x)
	}
	b.SetBytes(4096 * 16)
}

func BenchmarkFrameCodec(b *testing.B) {
	c := link.DefaultCodec()
	f := &link.Frame{Type: link.FrameData, Addr: 3, Seq: 1, Payload: make([]byte, 8)}
	chips, err := c.EncodeFrame(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DecodeFrame(chips); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinkBudgetBER(b *testing.B) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	bud := core.NewLinkBudget(env, d)
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += bud.BER(100 + float64(i%300))
	}
	if math.IsNaN(acc) {
		b.Fatal("NaN")
	}
}

func BenchmarkMultipathEnumeration(b *testing.B) {
	env := ocean.CharlesRiver()
	cfg := ocean.DefaultMultipathConfig(18.5e3)
	g := ocean.Geometry{SourceDepth: 1.6, ReceiverDepth: 2.4, Range: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Multipath(g, cfg)
	}
}

func BenchmarkVanAttaScatter(b *testing.B) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(16, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ScatterField(core.DefaultCarrierHz, float64(i%90)/90)
	}
}

func BenchmarkPABGain(b *testing.B) {
	d := baseline.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ScatterField(core.DefaultCarrierHz, 0.5)
	}
}

func BenchmarkMonteCarloCell(b *testing.B) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	bud := core.NewLinkBudget(env, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCell(sim.TrialConfig{
			Budget: bud, RangeM: 250, Trials: 100, ChipsPerTrial: 392, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMonteCarloSweep measures a 16-cell RunCells batch at the given pool
// width; the serial/parallel pair quantifies the worker-pool speedup on
// whatever machine runs the suite.
func benchMonteCarloSweep(b *testing.B, workers int) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	bud := core.NewLinkBudget(env, d)
	cfgs := make([]sim.TrialConfig, 16)
	for i := range cfgs {
		cfgs[i] = sim.TrialConfig{
			Budget: bud, RangeM: 100 + 20*float64(i), Trials: 100,
			ChipsPerTrial: 392, Seed: int64(i + 1),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCells(cfgs, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarloSweepSerial(b *testing.B)   { benchMonteCarloSweep(b, 1) }
func BenchmarkMonteCarloSweepParallel(b *testing.B) { benchMonteCarloSweep(b, 0) }

// --- Extension benches (X-series). ---

func BenchmarkX1Ranging(b *testing.B) {
	benchExperiment(b, "X1", []string{"worst_error_m"})
}

func BenchmarkX2MaryThroughput(b *testing.B) {
	benchExperiment(b, "X2", []string{"range_2fsk_m", "range_4fsk_m"})
}

func BenchmarkMFSKDemod(b *testing.B) {
	p := phy.DefaultMFSKParams()
	m, err := phy.NewMFSKModulator(p)
	if err != nil {
		b.Fatal(err)
	}
	d, err := phy.NewMFSKDemodulator(p)
	if err != nil {
		b.Fatal(err)
	}
	syms := make([]byte, 256)
	rng := rand.New(rand.NewSource(1))
	for i := range syms {
		syms[i] = byte(rng.Intn(4))
	}
	g, err := m.GammaWaveform(syms)
	if err != nil {
		b.Fatal(err)
	}
	y := make([]complex128, len(g))
	for i, v := range g {
		y[i] = complex(0.1*v, 0)
	}
	acq := phy.Acquisition{Start: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.DemodSymbols(y, acq, len(syms)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEqualizer measures the decision-feedback equalizer's
// effect on single-shot decode rate across coastal channel realizations
// (the ISI-limited regime it targets).
func BenchmarkAblationEqualizer(b *testing.B) {
	env := ocean.AtlanticCoastal()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		b.Fatal(err)
	}
	run := func(eq bool) float64 {
		ok := 0
		const seeds = 20
		for seed := int64(0); seed < seeds; seed++ {
			rcfg := reader.DefaultConfig()
			rcfg.UseEqualizer = eq
			s, err := core.NewSystem(core.SystemConfig{
				Env: env, Design: d, Range: 40,
				ReaderDepth: 3, NodeDepth: 4, NodeAddr: 7, Seed: seed,
				Reader: rcfg,
			})
			if err != nil {
				b.Fatal(err)
			}
			s.WakeNode(3600)
			rep, err := s.RunRound()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Rx.OK() {
				ok++
			}
		}
		return float64(ok) / seeds
	}
	var plain, equalized float64
	for i := 0; i < b.N; i++ {
		plain = run(false)
		equalized = run(true)
	}
	b.ReportMetric(plain, "decode_rate_plain")
	b.ReportMetric(equalized, "decode_rate_equalized")
}

func BenchmarkX3WaveformValidation(b *testing.B) {
	benchExperiment(b, "X3", []string{"worst_delivery_gap"})
}

func BenchmarkX4Sensitivity(b *testing.B) {
	benchExperiment(b, "X4", []string{"nominal_ratio", "ratio_min", "ratio_max"})
}

func BenchmarkX5Environment(b *testing.B) {
	benchExperiment(b, "X5", []string{"range_at_7mps", "range_at_18mps"})
}
