module vab

go 1.23
