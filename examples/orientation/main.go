// Orientation demo: why Van Atta? Sweeps the node's rotation and renders an
// ASCII comparison of the retrodirective array against a conventional
// (specular) array of the same size: the specular response collapses off
// broadside while the Van Atta response stays flat.
//
//	go run ./examples/orientation
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/piezo"
	"vab/internal/vanatta"
)

func main() {
	env := ocean.CharlesRiver()
	c := env.MeanSoundSpeed()
	fc := core.DefaultCarrierHz
	arr, err := vanatta.NewUniformLinear(16, c/fc/2, piezo.MustDefault(), c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Monostatic backscatter gain vs orientation (16 elements, λ/2 spacing)")
	fmt.Println("each bar: 1 char ≈ 2 dB above -20 dB")
	fmt.Printf("%8s  %-28s  %-28s\n", "angle", "van atta (retrodirective)", "specular (fixed array)")

	bar := func(db float64) string {
		n := int((db + 20) / 2)
		if n < 0 {
			n = 0
		}
		if n > 28 {
			n = 28
		}
		return strings.Repeat("#", n)
	}

	for deg := -80.0; deg <= 80; deg += 10 {
		th := deg * math.Pi / 180
		va := arr.MonostaticGainDB(fc, th)
		sp := arr.MonostaticSpecularGainDB(fc, th)
		fmt.Printf("%7.0f°  %-28s  %-28s\n", deg, bar(va), bar(sp))
	}

	fmt.Println()
	va, spec := arr.OrientationSweep(fc, []float64{0, math.Pi / 6, math.Pi / 3})
	fmt.Printf("van atta gain at 0°/30°/60°:  %.1f / %.1f / %.1f dB\n", va[0], va[1], va[2])
	fmt.Printf("specular gain at 0°/30°/60°:  %.1f / %.1f / %.1f dB\n", spec[0], spec[1], spec[2])
	fmt.Printf("worst-case van atta gain over ±81°: %.1f dB (flat ⇒ orientation-independent range)\n",
		arr.MinMonostaticGainDB(fc, 2*math.Pi*0.45, 90))
}
