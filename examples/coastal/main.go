// Coastal monitoring: a small VAB sensor network — several battery-free
// nodes at different ranges and orientations, a polling MAC with retries,
// and a TCP gateway streaming decoded readings to a subscriber. This is the
// application the paper's introduction motivates.
//
//	go run ./examples/coastal
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vab/internal/core"
	"vab/internal/gateway"
	"vab/internal/mac"
	"vab/internal/ocean"
)

func main() {
	env := ocean.CharlesRiver()
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy four nodes at different ranges/orientations; thanks to
	// retrodirectivity, orientation is a non-issue.
	fleet, err := core.NewFleet(
		core.SystemConfig{Env: env, Design: design, Range: 1, Seed: 100},
		[]core.NodePlacement{
			{Addr: 1, Range: 40},
			{Addr: 2, Range: 80, Orientation: 25 * 3.14159 / 180},
			{Addr: 3, Range: 120, Orientation: 50 * 3.14159 / 180},
			{Addr: 4, Range: 160, Orientation: -35 * 3.14159 / 180},
		},
		mac.DefaultPollPolicy(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fleet.Deploy(3600)

	// Shore-side gateway plus one resilient subscriber.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv, err := gateway.NewServer(ctx, "127.0.0.1:0", log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	out := make(chan gateway.Reading, 32)
	subCtx, subCancel := context.WithCancel(ctx)
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		gateway.Subscribe(subCtx, srv.Addr().String(), out)
	}()
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for rd := range out {
			fmt.Printf("  shore: node %d #%d  %.2f °C  %.0f mbar  (SNR %.1f dB)\n",
				rd.NodeAddr, rd.Count, rd.TempC, rd.PressureMbar, rd.SNRdB)
		}
	}()

	// Three polling cycles.
	for cycle := 1; cycle <= 3; cycle++ {
		readings, rep, err := fleet.RunCycle()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: delivered %d/%d (retries %d)\n",
			cycle, rep.Delivered, rep.Polled, rep.Retries)
		for _, r := range readings {
			srv.Publish(gateway.Reading{
				NodeAddr: r.Addr, Count: r.Reading.Count,
				TempC: r.Reading.TempC, PressureMbar: r.Reading.PressureMbar,
				SNRdB: r.SNRdB, Time: time.Now().UTC(),
			})
		}
		time.Sleep(150 * time.Millisecond) // let the subscriber drain
	}

	subCancel()
	<-subDone
	<-printed
	fmt.Println("delivery ratios:")
	for _, n := range fleet.Nodes() {
		fmt.Printf("  node %d: %.0f%% (%d polls)\n", n.Addr,
			100*float64(n.Successes)/float64(n.Polls), n.Polls)
	}
}
