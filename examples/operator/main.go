// Operator workflow: managing a deployed VAB node over the acoustic link —
// the full command set in one session. The operator pings the node, ranges
// it by time of flight, stretches its reporting interval to save energy,
// and finally mutes it for maintenance. Everything travels through the
// simulated channel and the real DSP on both ends.
//
//	go run ./examples/operator
package main

import (
	"fmt"
	"log"
	"math"

	"vab/internal/core"
	"vab/internal/node"
	"vab/internal/ocean"
)

func main() {
	env := ocean.CharlesRiver()
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Env: env, Design: design,
		Range:       75,
		Orientation: 20 * math.Pi / 180,
		NodeAddr:    12,
		Seed:        8,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.WakeNode(3600)

	// 1. Ping: is the node alive?
	acked := false
	for i := 0; i < 5 && !acked; i++ {
		var err error
		acked, _, err = sys.RunCommandRound(node.PingPayload())
		if err != nil {
			log.Fatal(err)
		}
		sys.WakeNode(30)
	}
	fmt.Printf("ping node 12: acked=%v\n", acked)

	// 2. Range it: where is it? (time-of-flight off the backscatter burst)
	for i := 0; i < 5; i++ {
		rep, err := sys.RunRangingRound()
		if err != nil {
			log.Fatal(err)
		}
		if rep.Rx.OK() {
			fmt.Printf("ranging: %.2f m (truth %.2f m, error %.2f m)\n",
				rep.EstimatedRange, rep.TrueRange, math.Abs(rep.EstimatedRange-rep.TrueRange))
			break
		}
		sys.WakeNode(30)
	}

	// 3. Read a sample.
	for i := 0; i < 5; i++ {
		rep, err := sys.RunRound()
		if err != nil {
			log.Fatal(err)
		}
		if rep.Rx.OK() {
			rd, _ := node.DecodeReading(rep.Rx.Frame.Payload)
			fmt.Printf("reading: %.2f °C, %.0f mbar\n", rd.TempC, rd.PressureMbar)
			break
		}
		sys.WakeNode(30)
	}

	// 4. Stretch the reporting interval: answer at most every 10 minutes.
	for i := 0; i < 5; i++ {
		acked, _, err := sys.RunCommandRound(node.SetIntervalPayload(600))
		if err != nil {
			log.Fatal(err)
		}
		if acked {
			break
		}
		sys.WakeNode(30)
	}
	fmt.Printf("report interval now %.0f s; polls inside the window are declined\n",
		sys.Node.ReportInterval())
	rep, err := sys.RunRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("immediate re-poll answered: %v (energy preserved)\n", rep.Rx.OK())

	// 5. Mute for maintenance: radio silence, unacknowledged by design.
	if _, _, err := sys.RunCommandRound(node.MutePayload(3600)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("muted: %v — the node will stay dark for an hour of node-clock time\n", sys.Node.Muted())
}
