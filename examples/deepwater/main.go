// Deepwater: where could underwater backscatter go next? This example uses
// the ray-tracing extension to visualize sound propagation in the canonical
// Munk deep-ocean profile — the SOFAR channel that traps shallow-angle rays
// and carries them for hundreds of kilometers — and contrasts the shallow
// coastal waveguide the paper's system operates in.
//
//	go run ./examples/deepwater
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"vab/internal/ocean"
)

func main() {
	m := ocean.CanonicalMunk()

	fmt.Println("Munk sound-speed profile (canonical):")
	for _, z := range []float64{0, 500, 1300, 2500, 4000, 5000} {
		c := m.SpeedAt(z)
		bar := strings.Repeat("·", int((c-1498)/1.2))
		fmt.Printf("  %5.0f m  %7.1f m/s  %s\n", z, c, bar)
	}
	fmt.Printf("  sound channel axis at %.0f m (minimum %.0f m/s)\n\n", m.AxisDepth, m.AxisSpeed)

	// Trace a fan of rays launched from the axis.
	fmt.Println("Ray fan from the SOFAR axis (80 km, '·' = ray sample):")
	const (
		rows, cols = 18, 72
		rangeMax   = 80e3
		depthMax   = 5000.0
	)
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	for _, th := range []float64{-0.12, -0.06, 0.03, 0.09, 0.14} {
		path, err := ocean.TraceRay(m, m.AxisDepth, th, rangeMax, 100, depthMax)
		if err != nil {
			log.Fatal(err)
		}
		for _, pt := range path {
			col := int(pt.Range / rangeMax * float64(cols-1))
			row := int(pt.Depth / depthMax * float64(rows-1))
			if row >= 0 && row < rows && col >= 0 && col < cols {
				grid[row][col] = '.'
			}
		}
	}
	axisRow := int(m.AxisDepth / depthMax * float64(rows-1))
	for r, line := range grid {
		mark := " "
		if r == axisRow {
			mark = "="
		}
		fmt.Printf("%5.0fm %s|%s|\n", float64(r)/float64(rows-1)*depthMax, mark, string(line))
	}
	fmt.Println("       (= sound channel axis: rays oscillate around it, never touching surface or bottom)")

	// Turning depths for a shallow launch.
	sh, dp := ocean.TurningDepths(m, m.AxisDepth, 0.09, depthMax)
	fmt.Printf("\nray at ±%.0f mrad turns at %.0f m and %.0f m (Snell: c(z_t) = c_axis/cosθ = %.1f m/s)\n",
		0.09*1000, sh, dp, m.AxisSpeed/math.Cos(0.09))

	fmt.Println("\nWhy this matters for backscatter: today's VAB operates in shallow")
	fmt.Println("iso-velocity waveguides (rivers, coasts). A deep-moored retrodirective")
	fmt.Println("node near the SOFAR axis would see trapped, low-loss propagation —")
	fmt.Println("the ray model above is the first substrate needed to study that.")
}
