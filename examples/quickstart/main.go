// Quickstart: one reader, one battery-free Van Atta node, one full
// query-response round over the simulated river channel — the smallest
// complete use of the VAB stack.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"vab/internal/core"
	"vab/internal/node"
	"vab/internal/ocean"
)

func main() {
	// 1. Pick an environment and a node design: the Charles River preset
	//    and the paper's 16-element Van Atta array.
	env := ocean.CharlesRiver()
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy: reader and node 100 m apart, node rotated 30° away.
	sys, err := core.NewSystem(core.SystemConfig{
		Env:         env,
		Design:      design,
		Range:       100,
		Orientation: 30 * math.Pi / 180,
		NodeAddr:    7,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Power up: the node harvests the reader's carrier.
	sys.WakeNode(600)
	fmt.Printf("node state after harvesting: %v\n", sys.Node.State())

	// 4. Query-response rounds: downlink OOK query, backscatter FSK
	//    response, full DSP chain on both ends. Shallow-water fading can
	//    claim an individual round, so poll with retries exactly like the
	//    MAC layer does.
	var rep core.RoundReport
	for attempt := 1; ; attempt++ {
		rep, err = sys.RunRound()
		if err != nil {
			log.Fatal(err)
		}
		if rep.Rx.OK() {
			break
		}
		fmt.Printf("round %d failed (%v), retrying\n", attempt, rep.Rx.Err)
		if attempt == 5 {
			log.Fatal("all rounds failed; budget says this should not happen at 100 m")
		}
		sys.WakeNode(30)
	}

	reading, _ := node.DecodeReading(rep.Rx.Frame.Payload)
	fmt.Printf("frame from node %d (seq %d): %.2f °C, %.0f mbar\n",
		rep.Rx.Frame.Addr, rep.Rx.Frame.Seq, reading.TempC, reading.PressureMbar)
	fmt.Printf("link: acquisition %.2f, tone SNR %.1f dB, %d FEC corrections\n",
		rep.Rx.AcqMetric, 10*math.Log10(rep.ToneSNREst), rep.Rx.Corrected)

	// 5. Compare with the analytic budget for the same geometry.
	b := sys.PredictedBudget()
	fmt.Printf("budget: predicted SNR %.1f dB, predicted BER %.2e, max range %.0f m\n",
		b.ToneSNRdB(100), b.BER(100), b.MaxRange(1e-3, 5000))
}
