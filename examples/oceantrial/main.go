// Ocean trial: replicates the paper's ocean validation campaign — the VAB
// node in the Atlantic coastal preset, BER measured against range, with the
// river curve alongside for contrast (experiment E6 of the reproduction).
//
//	go run ./examples/oceantrial
package main

import (
	"fmt"
	"log"

	"vab/internal/experiments"
)

func main() {
	res, err := experiments.E6Ocean(experiments.Options{Trials: 400, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table.String())
	fmt.Println()
	for _, n := range res.Notes {
		fmt.Println("»", n)
	}

	// Headline numbers.
	fmt.Printf("\nocean max range at BER 1e-3: %.0f m\n", res.Metrics["ocean_range_at_target"])
	fmt.Printf("river max range at BER 1e-3: %.0f m\n", res.Metrics["river_range_at_target"])

	// The campaign-scale aggregate (E10) reproduces the >1,500-trial
	// evaluation across both environments.
	campaign, err := experiments.E10Campaign(experiments.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncampaign size: %.0f trials across river and ocean\n",
		campaign.Metrics["total_trials"])
}
