// Command vabbench runs the repo's headline performance workloads and
// emits a machine-readable snapshot, so the perf trajectory is tracked
// across PRs instead of living in commit messages.
//
// Usage:
//
//	vabbench                     # writes BENCH_<yyyy-mm-dd>.json
//	vabbench -out bench.json     # explicit path ("-" for stdout)
//	vabbench -time 0.2           # seconds per workload (default 1)
//	vabbench -compare prev.json  # diff against a previous snapshot
//
// Each workload is timed with its own calibration loop (run once, then
// scale iterations to fill the time budget) and reports ns/op plus
// allocs/op from runtime.MemStats deltas. The serial/parallel pairs share
// identical seeded inputs, so their ratio is the measured speedup of the
// worker pool on this machine; the FFT workloads hit the cached-plan
// FFTInto path the demodulator and bench suite use.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"vab/internal/channel"
	"vab/internal/core"
	"vab/internal/dsp"
	"vab/internal/experiments"
	"vab/internal/gateway"
	"vab/internal/linksim"
	"vab/internal/mac"
	"vab/internal/netmem"
	"vab/internal/node"
	"vab/internal/ocean"
	"vab/internal/sim"
	"vab/internal/telemetry"
)

// sinkConn is a counting-sink subscriber socket for the gateway flush
// workloads: the first Read serves a scripted client hello upgrading the
// session to ProtocolV2, later Reads block until Close, and Writes are
// accepted instantly. Drain cost is zero and identical regardless of
// server internals, so the workload isolates server-side flush cost —
// encode, sequence, fan-out, and the writer path down to the socket call.
type sinkConn struct {
	hello  []byte // remaining scripted bytes; only the server's read loop touches it
	closed atomic.Bool
	unread chan struct{}
	addr   netmem.Addr
}

func newSinkConn(hello []byte) *sinkConn {
	return &sinkConn{hello: hello, unread: make(chan struct{}), addr: netmem.Addr{Name: "sink"}}
}

func (c *sinkConn) Read(b []byte) (int, error) {
	if len(c.hello) > 0 {
		n := copy(b, c.hello)
		c.hello = c.hello[n:]
		return n, nil
	}
	<-c.unread
	return 0, io.EOF
}

func (c *sinkConn) Write(b []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	return len(b), nil
}

// WriteBuffers accepts a writev batch in one call, matching the netmem
// transport's vectored-write fast path so the workload exercises the
// same server branch production transports hit.
func (c *sinkConn) WriteBuffers(bufs net.Buffers) (int64, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	var n int64
	for _, b := range bufs {
		n += int64(len(b))
	}
	return n, nil
}

func (c *sinkConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.unread)
	}
	return nil
}

func (c *sinkConn) LocalAddr() net.Addr              { return c.addr }
func (c *sinkConn) RemoteAddr() net.Addr             { return c.addr }
func (c *sinkConn) SetDeadline(time.Time) error      { return nil }
func (c *sinkConn) SetReadDeadline(time.Time) error  { return nil }
func (c *sinkConn) SetWriteDeadline(time.Time) error { return nil }

// sinkListener hands the server sink conns pushed via add, then blocks
// in Accept like an idle socket. Conns are fed only after the server's
// policies are configured: sessions must not register while the
// constructor-default heartbeat policy is still in force.
type sinkListener struct {
	conns chan net.Conn
	done  chan struct{}
	addr  netmem.Addr
}

func newSinkListener(capacity int) *sinkListener {
	return &sinkListener{conns: make(chan net.Conn, capacity), done: make(chan struct{}), addr: netmem.Addr{Name: "sink"}}
}

func (l *sinkListener) add(c net.Conn) { l.conns <- c }

func (l *sinkListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *sinkListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

func (l *sinkListener) Addr() net.Addr { return l.addr }

// result is one workload's measurement.
type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// NsPerItem normalizes ns/op by the workload's item count (per-node
	// cost for fleet-cycle workloads); 0 for unit workloads.
	NsPerItem float64 `json:"ns_per_item,omitempty"`
}

// report is the emitted JSON document. GOMAXPROCS is recorded alongside
// the CPU count so parallel-workload numbers can be interpreted on boxes
// where the two differ (container quotas, taskset, GOMAXPROCS overrides).
type report struct {
	Date       string   `json:"date"`
	Go         string   `json:"go"`
	CPUs       int      `json:"cpus"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []result `json:"results"`
}

// measure calibrates f with one warm-up call, then runs it enough times to
// fill roughly budget seconds, reporting per-op wall time and allocations.
func measure(name string, budget float64, f func()) result {
	f() // warm-up: builds FFT plans, faults in pages

	start := time.Now()
	f()
	per := time.Since(start)
	if per <= 0 {
		per = time.Nanosecond
	}
	iters := int(budget * float64(time.Second) / float64(per))
	if iters < 1 {
		iters = 1
	}
	if iters > 1_000_000 {
		iters = 1_000_000
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return result{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(iters),
	}
}

func main() {
	out := flag.String("out", "", `output path (default BENCH_<yyyy-mm-dd>.json, "-" for stdout)`)
	budget := flag.Float64("time", 1.0, "seconds of measurement per workload")
	compare := flag.String("compare", "", "previous vabbench snapshot to diff against (warns on >20% ns/op regressions)")
	filter := flag.String("filter", "", "run only workloads whose name contains this substring")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured workloads")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	env := ocean.CharlesRiver()
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		fatal(err)
	}
	budgetTier := core.NewLinkBudget(env, design)

	rng := rand.New(rand.NewSource(1))
	x1024 := dsp.GaussianNoise(make([]complex128, 1024), 1, rng)
	x1000 := dsp.GaussianNoise(make([]complex128, 1000), 1, rng)
	dst := make([]complex128, 1024)
	real1024 := make([]float64, 1024)
	for i := range real1024 {
		real1024[i] = rng.NormFloat64()
	}
	rfftDst := make([]complex128, 1024)
	convDst := make([]complex128, 1024+64-1)

	sweep := make([]sim.TrialConfig, 16)
	for i := range sweep {
		sweep[i] = sim.TrialConfig{
			Budget: budgetTier, RangeM: 100 + 20*float64(i), Trials: 100,
			ChipsPerTrial: 392, Seed: int64(i + 1),
		}
	}

	// Channel-layer workloads: the steady-state round pipeline. One link,
	// reused buffers, a rebuild per round — the shape core.System drives.
	linkCfg := channel.Config{
		Env: env, CarrierHz: 18.5e3, SampleRate: 16e3,
		ReaderDepth: 1.6, NodeDepth: 2.4, Range: 100,
		SelfInterferenceDB: -30, ColoredNoise: true, Seed: 1,
	}
	lnk, err := channel.New(linkCfg)
	if err != nil {
		fatal(err)
	}
	const chN = 16384
	chTx := make([]complex128, chN)
	chGamma := make([]complex128, chN)
	chDst := make([]complex128, chN)
	for i := range chTx {
		chTx[i] = complex(1e9, 0)
		chGamma[i] = complex(float64(i%2), 0)
	}
	linkGeom := channel.Geometry{ReaderDepth: 1.61, NodeDepth: 2.39, Range: 100.02}
	var linkSeed int64

	// Fleet-cycle workloads: one full 64-node polling cycle through the MAC
	// wave scheduler, serial vs parallel pool. Seeded cycle output is
	// bit-identical at both widths, so the pair measures pure scheduling.
	mkFleet := func(workers int) *core.Fleet {
		placements := make([]core.NodePlacement, 64)
		for i := range placements {
			placements[i] = core.NodePlacement{
				Addr:        byte(i + 1),
				Range:       40 + float64(i),
				Orientation: 0.1 * float64(i%7),
			}
		}
		f, err := core.NewFleet(
			core.SystemConfig{Env: env, Design: design, Range: 1, Seed: 99},
			placements, mac.DefaultPollPolicy(),
		)
		if err != nil {
			fatal(err)
		}
		f.SetWorkers(workers)
		f.Deploy(3600)
		return f
	}
	fleetSerial := mkFleet(1)
	fleetParallel := mkFleet(0)

	// Abstract-tier workloads: one full polling cycle on the calibrated
	// link model (no heroes — pure model cost), at 100k and a million
	// nodes, serial vs pooled. The ns/item column is the per-node cost —
	// compare against fleet_cycle64/64 for the abstraction's speedup over
	// the waveform tier. Fleets are built lazily on first use so filtered
	// runs don't pay the million-node construction or its footprint.
	mkAbstract := func(nodes, workers int) func() *linksim.Fleet {
		var f *linksim.Fleet
		return func() *linksim.Fleet {
			if f == nil {
				var err error
				f, err = linksim.NewFleet(linksim.Config{
					Nodes:  nodes,
					Policy: mac.DefaultPollPolicy(),
					Seed:   99,
				})
				if err != nil {
					fatal(err)
				}
				f.SetWorkers(workers)
			}
			return f
		}
	}
	abstractSerial := mkAbstract(100_000, 1)
	abstractParallel := mkAbstract(100_000, 0)
	abstract1mSerial := mkAbstract(1_000_000, 1)
	abstract1mParallel := mkAbstract(1_000_000, 0)

	// TDL engine crossover: identical sparse kernels through both engines.
	tdlRng := rand.New(rand.NewSource(2))
	mkTaps := func(n int) []channel.Tap {
		taps := make([]channel.Tap, n)
		for i := range taps {
			taps[i] = channel.Tap{
				DelaySamples: 500 + tdlRng.Float64()*400,
				Gain:         complex(tdlRng.NormFloat64(), tdlRng.NormFloat64()),
			}
		}
		return taps
	}
	tdlX := dsp.GaussianNoise(make([]complex128, chN), 1, tdlRng)
	tdlDst := make([]complex128, chN)
	tdls := map[string]*channel.TDL{}
	for _, n := range []int{4, 16, 64} {
		taps := mkTaps(n)
		tdls[fmt.Sprintf("time_%dtaps", n)] = channel.NewTDL(taps, false)
		tdls[fmt.Sprintf("freq_%dtaps", n)] = channel.NewTDL(taps, true)
	}

	// Wire-codec workloads: the bit-packed sensor payload and the batched
	// gateway format, steady state (reused buffers — both paths pin zero
	// allocations per op in their package tests).
	packRng := rand.New(rand.NewSource(3))
	packReadings := make([]node.Reading, 6)
	for i := range packReadings {
		packReadings[i] = node.Reading{
			Count:        1000 + uint32(i),
			TempC:        float64(1200+packRng.Intn(40)+i) / 100,
			PressureMbar: float64(1290 + packRng.Intn(8)),
		}
	}
	packBuf := make([]byte, 0, node.PackedPayloadSize(len(packReadings)))
	wireReadings := make([]gateway.Reading, 16)
	for i := range wireReadings {
		wireReadings[i] = gateway.Reading{
			NodeAddr: byte(i%4 + 1), Seq: byte(i), Count: 500 + uint32(i),
			TempC: float64(1200+i) / 100, PressureMbar: float64(1290 + i),
			SNRdB: float64(1500+packRng.Intn(300)) / 100,
			Time:  time.Unix(0, 1700000000000000000+int64(i)*250e6).UTC(),
		}
	}
	wireBuf := make([]byte, 0, gateway.MaxPayloadSize)
	wirePayload, err := gateway.AppendReadingBatch(nil, wireReadings)
	if err != nil {
		fatal(err)
	}
	wireDecoded := make([]gateway.Reading, 0, len(wireReadings))

	// Gateway fan-out workloads: an in-process server with N counting-sink
	// subscribers; one op publishes `flushes` full batches and waits until
	// every subscriber has received every flush frame (framesSent
	// telemetry). ns/item is the per-reading-per-subscriber delivery cost.
	// The 1k shape upgrades every subscriber to v2 (one batch frame per
	// flush); the 10k shape keeps the fleet on the legacy v1 wire (one
	// frame per reading — sixteen per flush), the per-frame fan-out cost
	// that dominates with deployed pre-batching clients. Built lazily so
	// filtered runs don't pay the session setup.
	const gwBatch = 16
	mkGatewayFlush := func(subs, flushes int, v2 bool) func() {
		var op func()
		return func() {
			if op == nil {
				var hello []byte
				if v2 {
					var err error
					hello, err = gateway.EncodeFrame(gateway.MsgHello, []byte{gateway.ProtocolV2})
					if err != nil {
						fatal(err)
					}
				}
				framesPerFlush := gwBatch // v1: one frame per reading
				if v2 {
					framesPerFlush = 1 // one batch frame per flush
				}
				ln := newSinkListener(subs)
				srv := gateway.NewServerListener(context.Background(), ln, func(string, ...interface{}) {})
				srv.SetBatching(gwBatch, time.Hour)
				srv.SetHeartbeatPolicy(time.Hour, 3)
				reg := telemetry.NewRegistry()
				srv.Instrument(reg)
				frames := reg.Counter("vab_gateway_frames_sent_total", "")
				for i := 0; i < subs; i++ {
					ln.add(newSinkConn(hello))
				}
				for srv.Subscribers() < subs {
					time.Sleep(time.Millisecond)
				}
				time.Sleep(200 * time.Millisecond) // hello upgrades settle
				rd := gateway.Reading{NodeAddr: 1, Seq: 1, Count: 1, TempC: 15, PressureMbar: 1250, SNRdB: 18, Time: time.Unix(0, 1700000000000000000).UTC()}
				op = func() {
					want := frames.Value() + int64(flushes*framesPerFlush*subs)
					for f := 0; f < flushes; f++ {
						for i := 0; i < gwBatch; i++ {
							srv.Publish(rd)
						}
					}
					for frames.Value() < want {
						runtime.Gosched()
					}
				}
				for i := 0; i < 4; i++ {
					op() // writer buffers and arena freelist reach their high-water marks
				}
			}
			op()
		}
	}
	// The 10k op stays at 4 flushes: 64 v1 frames fills exactly one
	// subscriber send-queue's worth of backlog, so the op is comparable
	// across gateway designs without tripping slow-subscriber eviction.
	gatewayFlush1k := mkGatewayFlush(1_000, 8, true)
	gatewayFlush10k := mkGatewayFlush(10_000, 4, false)

	// items gives per-op item counts for ns/item normalization (per-node
	// cost for the fleet-cycle workloads, per-reading cost for the wire
	// codecs); absent names are unit workloads.
	items := map[string]int{
		"fleet_cycle64_serial":        64,
		"fleet_cycle64_parallel":      64,
		"abstract_cycle100k_serial":   100_000,
		"abstract_cycle100k_parallel": 100_000,
		"abstract_cycle1m_serial":     1_000_000,
		"abstract_cycle1m_parallel":   1_000_000,
		"gateway_flush_1k":            gwBatch * 8 * 1_000,
		"gateway_flush_10k":           gwBatch * 4 * 10_000,
		"payload_pack6":               6,
		"wire_encode_batch16":         16,
		"wire_decode_batch16":         16,
	}

	workloads := []struct {
		name string
		f    func()
	}{
		{"fft1024_into", func() { dsp.FFTInto(dst, x1024) }},
		{"fft_bluestein1000_into", func() { dsp.FFTInto(dst[:1000], x1000) }},
		{"rfft1024", func() { dsp.RFFT(real1024) }},
		{"rfft1024_into", func() { dsp.RFFTInto(rfftDst, real1024) }},
		{"convolve_1024x64", func() { dsp.Convolve(x1024, x1024[:64]) }},
		{"convolve_1024x64_into", func() { dsp.ConvolveInto(convDst, x1024, x1024[:64]) }},
		{"montecarlo_cell", func() {
			if _, err := sim.RunCell(sweep[0]); err != nil {
				fatal(err)
			}
		}},
		{"montecarlo_sweep16_serial", func() {
			if _, err := sim.RunCells(sweep, 1); err != nil {
				fatal(err)
			}
		}},
		{"montecarlo_sweep16_parallel", func() {
			if _, err := sim.RunCells(sweep, 0); err != nil {
				fatal(err)
			}
		}},
		{"e10_campaign_serial", func() {
			if _, err := experiments.Run("E10", experiments.Options{Trials: 100, Seed: 1, Workers: 1}); err != nil {
				fatal(err)
			}
		}},
		{"e10_campaign_parallel", func() {
			if _, err := experiments.Run("E10", experiments.Options{Trials: 100, Seed: 1}); err != nil {
				fatal(err)
			}
		}},
		{"link_rebuild", func() {
			linkSeed++
			if err := lnk.Rebuild(linkGeom, linkSeed); err != nil {
				fatal(err)
			}
		}},
		{"channel_roundtrip_into_16k", func() {
			if _, err := lnk.RoundTripInto(chDst, chTx, chGamma, complex(0.1, 0)); err != nil {
				fatal(err)
			}
		}},
		{"channel_roundtrip_alloc_16k", func() {
			if _, err := lnk.RoundTrip(chTx, chGamma, complex(0.1, 0)); err != nil {
				fatal(err)
			}
		}},
		{"uplink_noise_into_16k", func() { lnk.UplinkInto(chDst, chTx, chTx) }},
		{"fleet_cycle64_serial", func() {
			if _, _, err := fleetSerial.RunCycle(); err != nil {
				fatal(err)
			}
		}},
		{"fleet_cycle64_parallel", func() {
			if _, _, err := fleetParallel.RunCycle(); err != nil {
				fatal(err)
			}
		}},
		{"abstract_cycle100k_serial", func() {
			if _, err := abstractSerial().RunCycle(); err != nil {
				fatal(err)
			}
		}},
		{"abstract_cycle100k_parallel", func() {
			if _, err := abstractParallel().RunCycle(); err != nil {
				fatal(err)
			}
		}},
		{"abstract_cycle1m_serial", func() {
			if _, err := abstract1mSerial().RunCycle(); err != nil {
				fatal(err)
			}
		}},
		{"abstract_cycle1m_parallel", func() {
			if _, err := abstract1mParallel().RunCycle(); err != nil {
				fatal(err)
			}
		}},
		{"gateway_flush_1k", func() { gatewayFlush1k() }},
		{"gateway_flush_10k", func() { gatewayFlush10k() }},
		{"payload_pack6", func() {
			var err error
			packBuf, err = node.AppendPacked(packBuf[:0], packReadings)
			if err != nil {
				fatal(err)
			}
		}},
		{"wire_encode_batch16", func() {
			var err error
			wireBuf, err = gateway.AppendReadingBatch(wireBuf[:0], wireReadings)
			if err != nil {
				fatal(err)
			}
		}},
		{"wire_decode_batch16", func() {
			var err error
			wireDecoded, err = gateway.DecodeReadingBatchInto(wireDecoded[:0], wirePayload)
			if err != nil {
				fatal(err)
			}
		}},
		{"tdl_time_4taps_16k", func() { tdls["time_4taps"].Apply(tdlDst, tdlX) }},
		{"tdl_freq_4taps_16k", func() { tdls["freq_4taps"].Apply(tdlDst, tdlX) }},
		{"tdl_time_16taps_16k", func() { tdls["time_16taps"].Apply(tdlDst, tdlX) }},
		{"tdl_freq_16taps_16k", func() { tdls["freq_16taps"].Apply(tdlDst, tdlX) }},
		{"tdl_time_64taps_16k", func() { tdls["time_64taps"].Apply(tdlDst, tdlX) }},
		{"tdl_freq_64taps_16k", func() { tdls["freq_64taps"].Apply(tdlDst, tdlX) }},
	}

	rep := report{
		Date:       time.Now().Format("2006-01-02"),
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, w := range workloads {
		if *filter != "" && !strings.Contains(w.name, *filter) {
			continue
		}
		if rep.CPUs == 1 && strings.HasSuffix(w.name, "_parallel") {
			// On a single-CPU box the pooled path measures the serial
			// workload plus scheduling noise — skip rather than record a
			// number that reads as a pool regression.
			fmt.Fprintf(os.Stderr, "vabbench: %-28s skipped (single CPU: parallel ≡ serial + noise)\n", w.name)
			continue
		}
		r := measure(w.name, *budget, w.f)
		perItem := ""
		if n := items[w.name]; n > 0 {
			r.NsPerItem = r.NsPerOp / float64(n)
			perItem = fmt.Sprintf(" %8.1f ns/item", r.NsPerItem)
		}
		fmt.Fprintf(os.Stderr, "vabbench: %-28s %12.0f ns/op %8.1f allocs/op %12.0f B/op%s (%d iters)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, perItem, r.Iters)
		rep.Results = append(rep.Results, r)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vabbench: wrote %s\n", path)
	}
	if *compare != "" {
		compareSnapshots(*compare, rep)
	}
}

// compareSnapshots diffs the current report against a previous snapshot and
// warns (without failing: machines differ, CI boxes are noisy) when a shared
// workload regressed by more than 20% in ns/op. New or removed workloads are
// reported informationally.
func compareSnapshots(prevPath string, cur report) {
	data, err := os.ReadFile(prevPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vabbench: compare: %v (skipping)\n", err)
		return
	}
	var prev report
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "vabbench: compare: %s: %v (skipping)\n", prevPath, err)
		return
	}
	prevBy := make(map[string]result, len(prev.Results))
	for _, r := range prev.Results {
		prevBy[r.Name] = r
	}
	warned := 0
	for _, r := range cur.Results {
		p, ok := prevBy[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "vabbench: compare %-28s new workload (no baseline)\n", r.Name)
			continue
		}
		if p.NsPerOp <= 0 {
			continue
		}
		delta := (r.NsPerOp/p.NsPerOp - 1) * 100
		tag := ""
		switch {
		case delta > 20:
			tag = "  WARN: >20% regression"
			warned++
		case delta < -20:
			tag = "  (improved)"
		}
		fmt.Fprintf(os.Stderr, "vabbench: compare %-28s %12.0f -> %12.0f ns/op (%+6.1f%%)%s\n",
			r.Name, p.NsPerOp, r.NsPerOp, delta, tag)
	}
	if warned > 0 {
		fmt.Fprintf(os.Stderr, "vabbench: compare: %d workload(s) regressed >20%% vs %s\n", warned, prevPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vabbench:", err)
	os.Exit(1)
}
