// Command vabbench runs the repo's headline performance workloads and
// emits a machine-readable snapshot, so the perf trajectory is tracked
// across PRs instead of living in commit messages.
//
// Usage:
//
//	vabbench                     # writes BENCH_<yyyy-mm-dd>.json
//	vabbench -out bench.json     # explicit path ("-" for stdout)
//	vabbench -time 0.2           # seconds per workload (default 1)
//
// Each workload is timed with its own calibration loop (run once, then
// scale iterations to fill the time budget) and reports ns/op plus
// allocs/op from runtime.MemStats deltas. The serial/parallel pairs share
// identical seeded inputs, so their ratio is the measured speedup of the
// worker pool on this machine; the FFT workloads hit the cached-plan
// FFTInto path the demodulator and bench suite use.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"vab/internal/core"
	"vab/internal/dsp"
	"vab/internal/experiments"
	"vab/internal/ocean"
	"vab/internal/sim"
)

// result is one workload's measurement.
type result struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// report is the emitted JSON document.
type report struct {
	Date    string   `json:"date"`
	Go      string   `json:"go"`
	CPUs    int      `json:"cpus"`
	Results []result `json:"results"`
}

// measure calibrates f with one warm-up call, then runs it enough times to
// fill roughly budget seconds, reporting per-op wall time and allocations.
func measure(name string, budget float64, f func()) result {
	f() // warm-up: builds FFT plans, faults in pages

	start := time.Now()
	f()
	per := time.Since(start)
	if per <= 0 {
		per = time.Nanosecond
	}
	iters := int(budget * float64(time.Second) / float64(per))
	if iters < 1 {
		iters = 1
	}
	if iters > 1_000_000 {
		iters = 1_000_000
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return result{
		Name:        name,
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
	}
}

func main() {
	out := flag.String("out", "", `output path (default BENCH_<yyyy-mm-dd>.json, "-" for stdout)`)
	budget := flag.Float64("time", 1.0, "seconds of measurement per workload")
	flag.Parse()

	env := ocean.CharlesRiver()
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		fatal(err)
	}
	budgetTier := core.NewLinkBudget(env, design)

	rng := rand.New(rand.NewSource(1))
	x1024 := dsp.GaussianNoise(make([]complex128, 1024), 1, rng)
	x1000 := dsp.GaussianNoise(make([]complex128, 1000), 1, rng)
	dst := make([]complex128, 1024)
	real1024 := make([]float64, 1024)
	for i := range real1024 {
		real1024[i] = rng.NormFloat64()
	}

	sweep := make([]sim.TrialConfig, 16)
	for i := range sweep {
		sweep[i] = sim.TrialConfig{
			Budget: budgetTier, RangeM: 100 + 20*float64(i), Trials: 100,
			ChipsPerTrial: 392, Seed: int64(i + 1),
		}
	}

	workloads := []struct {
		name string
		f    func()
	}{
		{"fft1024_into", func() { dsp.FFTInto(dst, x1024) }},
		{"fft_bluestein1000_into", func() { dsp.FFTInto(dst[:1000], x1000) }},
		{"rfft1024", func() { dsp.RFFT(real1024) }},
		{"convolve_1024x64", func() { dsp.Convolve(x1024, x1024[:64]) }},
		{"montecarlo_cell", func() {
			if _, err := sim.RunCell(sweep[0]); err != nil {
				fatal(err)
			}
		}},
		{"montecarlo_sweep16_serial", func() {
			if _, err := sim.RunCells(sweep, 1); err != nil {
				fatal(err)
			}
		}},
		{"montecarlo_sweep16_parallel", func() {
			if _, err := sim.RunCells(sweep, 0); err != nil {
				fatal(err)
			}
		}},
		{"e10_campaign_serial", func() {
			if _, err := experiments.Run("E10", experiments.Options{Trials: 100, Seed: 1, Workers: 1}); err != nil {
				fatal(err)
			}
		}},
		{"e10_campaign_parallel", func() {
			if _, err := experiments.Run("E10", experiments.Options{Trials: 100, Seed: 1}); err != nil {
				fatal(err)
			}
		}},
	}

	rep := report{
		Date: time.Now().Format("2006-01-02"),
		Go:   runtime.Version(),
		CPUs: runtime.NumCPU(),
	}
	for _, w := range workloads {
		r := measure(w.name, *budget, w.f)
		fmt.Fprintf(os.Stderr, "vabbench: %-28s %12.0f ns/op %8.1f allocs/op (%d iters)\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.Iters)
		rep.Results = append(rep.Results, r)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Date)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "vabbench: wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vabbench:", err)
	os.Exit(1)
}
