// Command vabload is the gateway load-soak harness: it stands up an
// in-process gateway fed by the abstract linksim tier (deployment-scale
// cycle cadence and delivered counts from the calibrated link model),
// fans the stream out to thousands of concurrent subscribers, and
// reports fan-out latency percentiles, loss/recovery counts and
// slow-subscriber evictions.
//
// Optionally the listener is wrapped in the seeded netfaults chaos layer
// (-netchaos), turning the soak into a live-TCP incarnation of the E14
// campaign: subscribers churn through injected drops, stalls and torn
// frames, and -resume lets their sessions recover the gaps from the
// replay ring.
//
// The -transport flag picks the wire: real loopback TCP for fidelity, or
// the in-process netmem transport for scale (100k+ subscribers need
// neither fds nor ports). "auto" uses TCP up to a few thousand
// subscribers and netmem beyond that. -check turns the soak into an
// assertion: a nonzero exit when any publish stalled or any subscriber
// observed a sequence gap.
//
// Usage:
//
//	vabload -subs 1000 -cycles 50 -resume
//	vabload -subs 100000 -transport mem -cycles 5 -nodes 64 -check
//	vabload -subs 256 -netchaos chaos:0.25 -netseed 7 -resume -json load.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vab/internal/faults/netfaults"
	"vab/internal/gateway"
	"vab/internal/linksim"
	"vab/internal/mac"
	"vab/internal/netmem"
	"vab/internal/rlimit"
	"vab/internal/telemetry"
)

// tcpSubLimit is where -transport auto switches to netmem: past a few
// thousand loopback connections the soak measures fd and ephemeral-port
// limits, not the gateway.
const tcpSubLimit = 4096

// subStats is one subscriber's tally, written by its goroutine and read
// after the soak joins.
type subStats struct {
	delivered  int64
	reconnects int64
	gaps       int64 // missing readings observed via sequence jumps
	replayLoss int64 // readings the ack disclosed as aged out
	samples    []float64
}

type report struct {
	Date         string  `json:"date"`
	Go           string  `json:"go"`
	CPUs         int     `json:"cpus"`
	Transport    string  `json:"transport"`
	Shards       int     `json:"shards"`
	Subs         int     `json:"subs"`
	Cycles       int     `json:"cycles"`
	Nodes        int     `json:"nodes"`
	Resume       bool    `json:"resume"`
	NetChaos     string  `json:"netchaos,omitempty"`
	Published    int64   `json:"published"`
	Delivered    int64   `json:"delivered"`
	MeanPerSub   float64 `json:"mean_delivered_per_sub"`
	P50Ms        float64 `json:"fanout_p50_ms"`
	P99Ms        float64 `json:"fanout_p99_ms"`
	FanoutMps    float64 `json:"fanout_mreading_subs_per_sec"`
	MaxPublishUs float64 `json:"max_publish_us"`
	Stalls       int64   `json:"publish_stalls"`
	Reconnects   int64   `json:"reconnects"`
	Gaps         int64   `json:"gap_readings"`
	ReplayLoss   int64   `json:"aged_out_readings"`
	SlowEvicts   int64   `json:"slow_evictions"`
	DeadEvicts   int64   `json:"dead_peer_evictions"`
	Replayed     int64   `json:"readings_replayed"`
}

func main() {
	subs := flag.Int("subs", 200, "concurrent subscribers")
	cycles := flag.Int("cycles", 30, "linksim fleet cycles to publish")
	nodes := flag.Int("nodes", 128, "abstract-tier fleet size (readings per cycle ≈ delivered nodes)")
	interval := flag.Duration("interval", 50*time.Millisecond, "pause between fleet cycles")
	batch := flag.Int("batch", 16, "gateway broadcast coalescing (readings per flush)")
	flush := flag.Duration("flush", 5*time.Millisecond, "gateway flush deadline for a partial batch")
	resume := flag.Bool("resume", false, "subscribers request session resume (sequenced delivery + gap replay)")
	replay := flag.Int("replay", gateway.DefaultReplayWindow, "server replay ring size (readings)")
	netchaos := flag.String("netchaos", "", "netfaults profile wrapping the listener (e.g. \"chaos:0.25\", \"blips+lossy\"; empty = clean network)")
	netseed := flag.Int64("netseed", 1, "netfaults schedule seed")
	transport := flag.String("transport", "auto", "subscriber transport: tcp, mem (in-process), or auto")
	shards := flag.Int("shards", 0, "subscriber registry shards (0 = one per CPU)")
	check := flag.Bool("check", false, "exit nonzero if any publish stalled or any subscriber saw a sequence gap")
	readWait := flag.Duration("readwait", 2*time.Second, "subscriber read patience per frame before reconnecting (scale up with six-figure fleets: fan-out sweeps take longer than quiet-period detection)")
	sample := flag.Int("sample", 8, "record fan-out latency for every Nth reading per subscriber")
	jsonOut := flag.String("json", "", "write the report as JSON to this file (\"-\" = stdout)")
	flag.Parse()
	if *subs < 1 || *cycles < 1 || *sample < 1 {
		log.Fatal("vabload: -subs, -cycles and -sample must be positive")
	}

	switch *transport {
	case "auto":
		if *subs > tcpSubLimit {
			*transport = "mem"
		} else {
			*transport = "tcp"
		}
	case "tcp", "mem":
	default:
		log.Fatalf("vabload: unknown -transport %q (want tcp, mem or auto)", *transport)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Gateway, optionally behind the chaos wrapper.
	var ln net.Listener
	var memLn *netmem.Listener
	if *transport == "mem" {
		memLn = netmem.Listen("vabload", 0)
		ln = memLn
	} else {
		// Each subscriber costs two fds (dialer + accepted conn); raise the
		// soft limit toward the need, best-effort, before the ramp.
		need := uint64(2**subs + 64)
		if got := rlimit.RaiseNoFile(need); got < need {
			log.Printf("vabload: fd limit %d < %d needed for %d TCP subscribers; use -transport mem for large fleets", got, need, *subs)
		}
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("vabload: listen: %v", err)
		}
	}
	serveLn := ln
	if *netchaos != "" {
		prof, err := netfaults.Parse(*netchaos)
		if err != nil {
			log.Fatalf("vabload: %v", err)
		}
		eng, err := netfaults.NewEngine(*netseed, prof)
		if err != nil {
			log.Fatalf("vabload: %v", err)
		}
		serveLn = eng.Listen(ln)
	}
	srv := gateway.NewServerListener(ctx, serveLn, log.Printf)
	defer srv.Close()
	if *shards > 0 {
		srv.SetShards(*shards)
	}
	srv.SetBatching(*batch, *flush)
	srv.SetReplay(*replay)
	if *subs > tcpSubLimit {
		// A full fan-out sweep over a six-figure fleet outlasts the default
		// heartbeat budget; relax it so slow-but-progressing subscribers
		// aren't declared dead mid-soak.
		srv.SetHeartbeatPolicy(30*time.Second, 10)
	}
	reg := telemetry.NewRegistry()
	srv.Instrument(reg)
	addr := ln.Addr().String()
	dial := func(ctx context.Context, opts ...gateway.DialOption) (*gateway.Client, error) {
		if memLn == nil {
			return gateway.Dial(ctx, addr, opts...)
		}
		conn, err := memLn.Dial()
		if err != nil {
			return nil, err
		}
		c, err := gateway.NewClientConn(conn, opts...)
		if err != nil {
			conn.Close()
			return nil, err
		}
		return c, nil
	}

	// The feed: abstract-tier fleet on the calibrated link model.
	fleet, err := linksim.NewFleet(linksim.Config{
		Nodes: *nodes,
		Policy: mac.PollPolicy{
			MaxRetries: 2, BackoffSlots: 8, DropAfter: 3,
			Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8,
		},
		Env:  "river",
		Seed: 4200,
	})
	if err != nil {
		log.Fatalf("vabload: fleet: %v", err)
	}
	defer fleet.Close()
	fleet.SetWorkers(runtime.NumCPU())

	// Subscribers.
	stats := make([]subStats, *subs)
	var live atomic.Int64
	var wg sync.WaitGroup
	subCtx, stopSubs := context.WithCancel(ctx)
	defer stopSubs()
	for i := 0; i < *subs; i++ {
		wg.Add(1)
		go func(st *subStats) {
			defer wg.Done()
			runSubscriber(subCtx, dial, *resume, *sample, *readWait, st, &live)
		}(&stats[i])
	}
	waitFor := func(n int64) {
		// Connection ramp scales with the fleet: give six-figure soaks
		// time to shake hands before declaring the missing stragglers.
		deadline := time.Now().Add(30*time.Second + time.Duration(*subs/1000)*time.Second)
		for live.Load() < n && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Under chaos some handshakes fail and retry; wait for most of the
	// fleet rather than all of it.
	want := int64(*subs)
	if *netchaos != "" {
		want = int64(*subs * 3 / 4)
	}
	waitFor(want)
	log.Printf("vabload: %d/%d subscribers connected, publishing %d cycles of ~%d nodes",
		live.Load(), *subs, *cycles, *nodes)

	// Publish: one gateway reading per delivered poll, stamped at publish
	// time so subscribers measure true fan-out latency. Publish is a
	// non-blocking enqueue by contract — a call held up longer than
	// stallAfter counts as a reader-loop stall (the soak wants zero).
	const stallAfter = 100 * time.Millisecond
	var published, stalls int64
	var maxPublish time.Duration
	seq := uint64(0)
	publishStart := time.Now()
	for c := 0; c < *cycles; c++ {
		rep, err := fleet.RunCycle()
		if err != nil {
			log.Fatalf("vabload: cycle: %v", err)
		}
		for i := 0; i < rep.Delivered; i++ {
			seq++
			rd := gateway.Reading{
				NodeAddr:     byte(i%250 + 1),
				Seq:          byte(seq),
				Count:        uint32(seq),
				TempC:        15,
				PressureMbar: 1250,
				SNRdB:        rep.MeanSNRdB,
				Time:         time.Now().UTC(),
			}
			start := time.Now()
			srv.Publish(rd)
			if d := time.Since(start); d > maxPublish {
				maxPublish = d
			}
			if time.Since(start) > stallAfter {
				stalls++
			}
			published++
		}
		time.Sleep(*interval)
	}
	srv.Flush()
	// Let the tail fan out: wait until the frames-sent counter goes quiet
	// (no growth for a second) rather than a fixed pause — a 100k-sub
	// sweep drains for tens of seconds after the last publish.
	framesSent := reg.Counter("vab_gateway_frames_sent_total", "")
	settleBudget := time.Now().Add(30*time.Second + time.Duration(*subs/1000)*time.Second)
	for last := int64(-1); time.Now().Before(settleBudget); {
		cur := framesSent.Value()
		if cur == last {
			break
		}
		last = cur
		time.Sleep(time.Second)
	}
	fanoutWindow := time.Since(publishStart)
	stopSubs()
	wg.Wait()

	// Aggregate.
	var all []float64
	rep := report{
		Date: time.Now().UTC().Format(time.RFC3339), Go: runtime.Version(),
		CPUs: runtime.NumCPU(), Transport: *transport, Shards: *shards,
		Subs: *subs, Cycles: *cycles, Nodes: *nodes,
		Resume: *resume, NetChaos: *netchaos,
		Published:    published,
		MaxPublishUs: float64(maxPublish) / float64(time.Microsecond),
		Stalls:       stalls,
		SlowEvicts:   reg.Counter("vab_gateway_slow_subscriber_drops_total", "").Value(),
		DeadEvicts:   reg.Counter("vab_gateway_dead_peer_drops_total", "").Value(),
		Replayed:     reg.Counter("vab_gateway_readings_replayed_total", "").Value(),
	}
	for i := range stats {
		st := &stats[i]
		rep.Delivered += st.delivered
		rep.Reconnects += st.reconnects
		rep.Gaps += st.gaps
		rep.ReplayLoss += st.replayLoss
		all = append(all, st.samples...)
	}
	if *subs > 0 {
		rep.MeanPerSub = float64(rep.Delivered) / float64(*subs)
	}
	sort.Float64s(all)
	rep.P50Ms, rep.P99Ms = percentile(all, 0.50), percentile(all, 0.99)
	if secs := fanoutWindow.Seconds(); secs > 0 {
		rep.FanoutMps = float64(rep.Delivered) / secs / 1e6
	}

	log.Printf("vabload: published %d, delivered %d (%.1f/sub) over %s via %s — %.2f M reading·subs/s, fan-out p50 %.2f ms p99 %.2f ms",
		rep.Published, rep.Delivered, rep.MeanPerSub, fanoutWindow.Round(time.Millisecond), *transport, rep.FanoutMps, rep.P50Ms, rep.P99Ms)
	log.Printf("vabload: max publish %.0f µs (stalls %d), reconnects %d, gaps %d, aged-out %d, evictions slow=%d dead=%d, replayed %d",
		rep.MaxPublishUs, rep.Stalls, rep.Reconnects, rep.Gaps, rep.ReplayLoss, rep.SlowEvicts, rep.DeadEvicts, rep.Replayed)

	if *jsonOut != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("vabload: %v", err)
		}
		out = append(out, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
			log.Fatalf("vabload: %v", err)
		}
	}

	if *check && (rep.Stalls > 0 || rep.Gaps > 0) {
		log.Fatalf("vabload: check failed: %d publish stalls, %d gap readings (want zero of both)", rep.Stalls, rep.Gaps)
	}
}

// runSubscriber dials (and re-dials) until ctx ends, tallying deliveries,
// latency samples and sequence gaps.
func runSubscriber(ctx context.Context, dial func(context.Context, ...gateway.DialOption) (*gateway.Client, error), resume bool, sample int, readWait time.Duration, st *subStats, live *atomic.Int64) {
	var lastSeq uint64
	first := true
	for ctx.Err() == nil {
		opts := []gateway.DialOption{gateway.WithBatching(), gateway.WithHandshakeTimeout(10 * time.Second)}
		if resume {
			opts = append(opts, gateway.WithResume(lastSeq))
		}
		c, err := dial(ctx, opts...)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		if first {
			live.Add(1)
			first = false
		} else {
			st.reconnects++
		}
		stop := context.AfterFunc(ctx, func() { c.Close() })
		ackChecked := false
		got := false
		for {
			// The per-reading patience doubles as liveness detection, but a
			// session's FIRST reading can lag far behind the handshake: on a
			// six-figure ramp the publisher starts only once the whole fleet
			// is connected. Give the stream generous time to begin; apply
			// readWait once it has. Real connection errors surface
			// immediately either way.
			wait := readWait
			if !got {
				wait = max(readWait, 5*time.Minute)
			}
			rd, err := c.Next(time.Now().Add(wait))
			if err != nil {
				break
			}
			got = true
			st.delivered++
			if st.delivered%int64(sample) == 0 {
				st.samples = append(st.samples, float64(time.Since(rd.Time))/float64(time.Millisecond))
			}
			if resume {
				if !ackChecked {
					if from, _, ok := c.ResumeWindow(); ok {
						ackChecked = true
						if lastSeq > 0 && from > lastSeq+1 {
							st.replayLoss += int64(from - lastSeq - 1)
						}
					}
				}
				if seq := c.LastSeq(); seq > 0 {
					if lastSeq > 0 && seq > lastSeq+1 {
						st.gaps += int64(seq - lastSeq - 1)
					}
					lastSeq = seq
				}
			} else if seq := uint64(rd.Count); seq > 0 {
				// Without resume, Count carries the publish index: use it
				// to observe (not repair) loss across the stream.
				if lastSeq > 0 && seq > lastSeq+1 {
					st.gaps += int64(seq - lastSeq - 1)
				}
				if seq > lastSeq {
					lastSeq = seq
				}
			}
		}
		stop()
		c.Close()
	}
}

// percentile returns the pth percentile of sorted samples (0 when empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
