// Command vabgw runs a simulated VAB deployment and serves its decoded
// sensor readings over TCP: the shore-side gateway of the coastal
// monitoring application. Subscribers connect with the gateway protocol
// (see internal/gateway) or the examples/coastal client.
//
// Usage:
//
//	vabgw -listen 127.0.0.1:7070 -nodes 4 -interval 2s
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"vab/internal/channel"
	"vab/internal/core"
	"vab/internal/dsp"
	"vab/internal/faults/netfaults"
	"vab/internal/gateway"
	"vab/internal/mac"
	"vab/internal/ocean"
	"vab/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "gateway listen address")
	nodes := flag.Int("nodes", 3, "number of deployed nodes")
	interval := flag.Duration("interval", 2*time.Second, "polling cycle interval")
	duration := flag.Duration("duration", 0, "exit after this long (0 = run until signal)")
	envName := flag.String("env", "river", "environment: river or ocean")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines per polling cycle (waves of node rounds run concurrently; cycle output is bit-identical at any count)")
	metricsAddr := flag.String("metrics", "", "ops endpoint address for /metrics, /healthz and pprof (empty = telemetry off)")
	packed := flag.Int("packed", 0, "node payload batch: ≤1 = v1 single-reading payloads, 2..8 = packed multi-reading payloads (readings per response frame)")
	batch := flag.Int("batch", 1, "gateway broadcast coalescing: readings per flush (1 = publish immediately; v2 subscribers receive batch frames)")
	flush := flag.Duration("flush", 25*time.Millisecond, "gateway flush deadline for a partial batch")
	heartbeat := flag.Duration("heartbeat", gateway.DefaultHeartbeat, "heartbeat ping period for idle subscribers")
	hbMiss := flag.Int("heartbeat-miss", gateway.DefaultHeartbeatMiss, "missed heartbeat periods before a silent v2 peer is evicted")
	replay := flag.Int("replay", gateway.DefaultReplayWindow, "replay ring size backing session resume, in readings (0 disables resume)")
	drain := flag.Duration("drain", gateway.DefaultDrainTimeout, "graceful-drain budget on shutdown: time allowed to flush pending frames and goodbyes")
	shards := flag.Int("shards", 0, "subscriber registry shards (0 = one per CPU; more shards spread fan-out across cores)")
	netchaos := flag.String("netchaos", "", "wrap the listener in a seeded netfaults profile (e.g. \"chaos:0.25\", \"blips+lossy\"; empty = clean network; for resilience drills)")
	netseed := flag.Int64("netseed", 1, "netfaults schedule seed (injections are pure functions of seed, connection and op index)")
	flag.Parse()

	var env *ocean.Environment
	switch *envName {
	case "river":
		env = ocean.CharlesRiver()
	case "ocean":
		env = ocean.AtlanticCoastal()
	default:
		log.Fatalf("vabgw: unknown environment %q", *envName)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		log.Fatalf("vabgw: %v", err)
	}
	placements := make([]core.NodePlacement, *nodes)
	for i := range placements {
		placements[i] = core.NodePlacement{
			Addr:        byte(i + 1),
			Range:       40 + 30*float64(i), // nodes staggered outward
			Orientation: float64(i) * 0.3,
		}
	}
	fleet, err := core.NewFleet(
		core.SystemConfig{Env: env, Design: design, Range: 1, Seed: 1000, SensorBatch: *packed},
		placements, mac.DefaultPollPolicy(),
	)
	if err != nil {
		log.Fatalf("vabgw: %v", err)
	}
	fleet.SetWorkers(*workers)
	fleet.Deploy(3600)

	var srv *gateway.Server
	if *netchaos != "" {
		prof, err := netfaults.Parse(*netchaos)
		if err != nil {
			log.Fatalf("vabgw: %v", err)
		}
		eng, err := netfaults.NewEngine(*netseed, prof)
		if err != nil {
			log.Fatalf("vabgw: %v", err)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatalf("vabgw: %v", err)
		}
		srv = gateway.NewServerListener(ctx, eng.Listen(ln), log.Printf)
		log.Printf("vabgw: netfaults %q active on the listener (seed %d)", *netchaos, *netseed)
	} else {
		srv, err = gateway.NewServer(ctx, *listen, log.Printf)
		if err != nil {
			log.Fatalf("vabgw: %v", err)
		}
	}
	defer srv.Close()
	if *shards > 0 {
		srv.SetShards(*shards)
	}
	srv.SetBatching(*batch, *flush)
	srv.SetHeartbeatPolicy(*heartbeat, *hbMiss)
	srv.SetReplay(*replay)
	srv.SetDrainTimeout(*drain)
	log.Printf("vabgw: serving %d nodes (%s) on %s", *nodes, env.Name, srv.Addr())

	// Telemetry is off (free no-ops everywhere) unless -metrics names an
	// ops address.
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		ops, err := telemetry.Serve(ctx, *metricsAddr, reg)
		if err != nil {
			log.Fatalf("vabgw: metrics endpoint: %v", err)
		}
		defer ops.Close()
		dsp.Instrument(reg)
		channel.Instrument(reg)
		fleet.Instrument(reg)
		srv.Instrument(reg)
		log.Printf("vabgw: metrics on http://%s/metrics", ops.Addr())
	}

	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	seqs := map[byte]byte{}
	for {
		select {
		case <-ctx.Done():
			log.Printf("vabgw: shutting down")
			return
		case <-ticker.C:
			readings, rep, err := fleet.RunCycle()
			if err != nil {
				log.Printf("vabgw: cycle: %v", err)
				continue
			}
			for _, r := range readings {
				srv.Publish(gateway.Reading{
					NodeAddr:     r.Addr,
					Seq:          seqs[r.Addr],
					Count:        r.Reading.Count,
					TempC:        r.Reading.TempC,
					PressureMbar: r.Reading.PressureMbar,
					SNRdB:        r.SNRdB,
					Time:         time.Now().UTC(),
				})
				seqs[r.Addr]++
			}
			log.Printf("vabgw: cycle delivered %d/%d (subscribers: %d)",
				rep.Delivered, rep.Polled, srv.Subscribers())
		}
	}
}
