// Command vabscan is a link-budget explorer for VAB deployments: it prints
// the itemized sonar-equation terms for a configuration and sweeps range to
// show the predicted operating envelope.
//
// Usage:
//
//	vabscan -env river -elements 16 -range 300
//	vabscan -env ocean -elements 8 -orient 45 -rate 250
//	vabscan -env river -baseline            # prior-art single element
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"vab/internal/baseline"
	"vab/internal/core"
	"vab/internal/dsp"
	"vab/internal/ocean"
	"vab/internal/sim"
)

func main() {
	envName := flag.String("env", "river", "environment: river, ocean, tank")
	elements := flag.Int("elements", core.DefaultNodeElements, "van atta array size")
	useBaseline := flag.Bool("baseline", false, "use the prior-art single-element design")
	rangeM := flag.Float64("range", 300, "operating range in m for the term breakdown")
	orientDeg := flag.Float64("orient", 0, "node orientation in degrees")
	rate := flag.Float64("rate", 500, "chip rate (detection bandwidth), chips/s")
	source := flag.Float64("sl", core.DefaultSourceLevelDB, "source level, dB re 1 µPa @ 1 m")
	captureOut := flag.String("capture", "", "write one simulated round-trip capture to this file (VABC format)")
	flag.Parse()

	var env *ocean.Environment
	switch *envName {
	case "river":
		env = ocean.CharlesRiver()
	case "ocean":
		env = ocean.AtlanticCoastal()
	case "tank":
		env = ocean.TestTank()
	default:
		fatal(fmt.Errorf("unknown environment %q", *envName))
	}

	var design core.Design
	if *useBaseline {
		design = baseline.New()
	} else {
		d, err := core.NewVanAttaDesign(*elements, env, core.DefaultCarrierHz)
		if err != nil {
			fatal(err)
		}
		design = d
	}

	b := core.NewLinkBudget(env, design)
	b.Orientation = *orientDeg * math.Pi / 180
	b.ChipRate = *rate
	b.SourceLevelDB = *source
	if *useBaseline {
		b.SIPenaltyDB = core.CarrierBandSIPenaltyDB
	}
	if err := b.Validate(); err != nil {
		fatal(err)
	}

	terms := b.TermsAt(*rangeM)
	fmt.Printf("Link budget: %s in %s at %.0f m, orientation %.0f°\n\n",
		design.Name(), env.Name, *rangeM, *orientDeg)
	tt := sim.NewTable("", "term", "value")
	tt.AddRowf("source level (dB re µPa @1m)", terms.SourceLevelDB)
	tt.AddRowf("one-way transmission loss (dB)", terms.OneWayTLDB)
	tt.AddRowf("node conversion gain (dB)", terms.NodeGainDB)
	tt.AddRowf("noise in detection bin (dB)", terms.NoiseLevelDB)
	tt.AddRowf("diversity gain (dB)", terms.DiversityDB)
	tt.AddRowf("self-interference penalty (dB)", terms.SIPenaltyDB)
	tt.AddRowf("tone SNR (dB)", terms.ToneSNRdB)
	tt.AddRowf("Rician K (dB)", terms.RicianKdB)
	tt.AddRowf("predicted BER", terms.PredictedBER)
	tt.AddRowf("delay spread (ms)", terms.DelaySpreadSec*1e3)
	fmt.Print(tt.String())

	fmt.Printf("\nmax range at BER 1e-3: %.0f m\n\n", b.MaxRange(1e-3, 20000))

	sweep := sim.NewTable("Range sweep", "range_m", "snr_db", "ber")
	for _, r := range []float64{10, 25, 50, 100, 200, 300, 400, 600, 1000} {
		sweep.AddRowf(r, b.ToneSNRdB(r), b.BER(r))
	}
	fmt.Print(sweep.String())

	if *captureOut != "" {
		if err := dumpCapture(*captureOut, env, design, *rangeM, *orientDeg); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote capture to %s\n", *captureOut)
	}
}

// dumpCapture runs one waveform-level query-response round and writes the
// raw hydrophone capture for external analysis.
func dumpCapture(path string, env *ocean.Environment, design core.Design, rangeM, orientDeg float64) error {
	s, err := core.NewSystem(core.SystemConfig{
		Env: env, Design: design, Range: rangeM,
		Orientation: orientDeg * math.Pi / 180,
		NodeAddr:    1, Seed: 1,
	})
	if err != nil {
		return err
	}
	s.WakeNode(3600)
	capture, err := s.RecordRound()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return dsp.WriteCapture(f, &dsp.Capture{
		SampleRate: s.Reader.Config().PHY.SampleRate,
		CarrierHz:  core.DefaultCarrierHz,
		Samples:    capture,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vabscan:", err)
	os.Exit(1)
}
