// Command vabsim regenerates the paper's evaluation artifacts: every table
// and figure in the reproduction's experiment index (E1…E10).
//
// Usage:
//
//	vabsim -list               # the experiment inventory
//	vabsim -exp all            # run everything at paper scale
//	vabsim -exp E3             # just the head-to-head table
//	vabsim -exp E1 -trials 200 # quicker Monte-Carlo
//	vabsim -exp E6 -csv        # machine-readable output
//	vabsim -faults list        # fault-scenario inventory
//	vabsim -exp e11 -faults shrimp+shadowing  # chaos campaign
//	vabsim -exp list           # inventory with one-line descriptions
//	vabsim -exp e12            # abstract-tier 100k-node fleet campaign
//	vabsim -exp e12 -nodes 1000000  # the same campaign at a million nodes
//	vabsim -exp e13            # packed payload batching: readings/frame, wire bytes
//	vabsim -exp e14            # network chaos: gateway delivery, resume off vs on
//	vabsim -calibrate internal/linksim/testdata/calibration_v1.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"vab/internal/channel"
	"vab/internal/dsp"
	"vab/internal/experiments"
	"vab/internal/faults"
	"vab/internal/linksim"
	"vab/internal/sim"
	"vab/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (E1..E10, X1..), or 'all'")
	trials := flag.Int("trials", 0, "Monte-Carlo trials per cell (0 = experiment default)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", runtime.NumCPU(), "worker goroutines for Monte-Carlo cells, concurrent experiments and fleet poll waves (seeded output is bit-identical at any count)")
	nodes := flag.Int("nodes", 0, "fleet size for abstract-fleet experiments (e12; 0 = experiment default of 100000)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list the experiment inventory and exit")
	faultSpec := flag.String("faults", "", "fault scenario for fault-injecting experiments (e.g. chaos, shrimp+shadowing:0.5); 'list' prints the inventory")
	metricsAddr := flag.String("metrics", "", "ops endpoint address for /metrics, /healthz and pprof during the run (empty = telemetry off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (seeded output is unaffected)")
	calibrate := flag.String("calibrate", "", "measure a linksim calibration table against the waveform tier and write it to this path")
	flag.Parse()

	if *calibrate != "" {
		cfg := linksim.DefaultCalibrateConfig()
		cfg.Seed = *seed
		if *seed == 1 {
			cfg.Seed = 7 // the committed artifact's provenance seed
		}
		if *trials > 0 {
			cfg.RoundsPerCell = *trials
		}
		cfg.Workers = *workers
		fmt.Fprintf(os.Stderr, "vabsim: calibrating %d cells × %d rounds (seed %d)...\n",
			len(cfg.Envs)*len(cfg.Intensities)*len(cfg.OrientsRad)*len(cfg.RangesM), cfg.RoundsPerCell, cfg.Seed)
		t, err := linksim.Calibrate(cfg)
		if err != nil {
			fatal(err)
		}
		if err := t.Write(*calibrate); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vabsim: wrote %s (format v%d, chip rate %.0f cps, logistic k=%.2f snr50=%.2f dB)\n",
			*calibrate, t.FormatVersion, t.ChipRate, t.LogisticK, t.LogisticSNR50)
		return
	}

	if strings.EqualFold(*exp, "list") {
		// Mirrors `-faults list`: the inventory with one-line descriptions,
		// without running anything.
		for _, line := range experiments.Describe() {
			fmt.Println(line)
		}
		fmt.Println("\nopt-in experiments (E11, E12, E13, E14) run only when named: vabsim -exp e14")
		return
	}

	if strings.EqualFold(*faultSpec, "list") {
		for _, line := range faults.Presets() {
			fmt.Println(line)
		}
		fmt.Println("\ncompose with '+', scale with ':<intensity>' — e.g. -faults shrimp:0.5+brownout")
		return
	}
	if *faultSpec != "" {
		// Validate the spec up front so typos fail before a long campaign.
		if _, err := faults.Parse(*faultSpec, *seed); err != nil {
			fatal(err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Telemetry is off (free no-ops) unless -metrics names an ops address;
	// the seeded Monte-Carlo outputs are bit-identical either way. The
	// endpoint lives for the duration of the campaign — long runs can be
	// scraped or profiled while they grind.
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		ops, err := telemetry.Serve(context.Background(), *metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer ops.Close()
		dsp.Instrument(reg)
		channel.Instrument(reg)
		sim.Instrument(reg)
		experiments.Instrument(reg)
		fmt.Fprintf(os.Stderr, "vabsim: metrics on http://%s/metrics\n", ops.Addr())
	}

	if *list {
		for _, id := range experiments.IDs() {
			res, err := experiments.Run(id, experiments.Options{Trials: 1, Seed: 1})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-4s %-7s %s\n", res.ID, res.Kind, res.Title)
		}
		return
	}

	opts := experiments.Options{Trials: *trials, Seed: *seed, Workers: *workers, Faults: *faultSpec, Nodes: *nodes}
	var results []*experiments.Result
	if strings.EqualFold(*exp, "all") {
		all, err := experiments.RunAll(opts)
		if err != nil {
			fatal(err)
		}
		results = all
	} else {
		res, err := experiments.Run(strings.ToUpper(*exp), opts)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}

	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			fmt.Printf("# %s: %s\n", res.ID, res.Title)
			fmt.Print(res.Table.CSV())
		} else {
			fmt.Print(res.Table.String())
		}
		for _, n := range res.Notes {
			fmt.Printf("  » %s\n", n)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vabsim:", err)
	os.Exit(1)
}
